"""Engine-construction benchmark: flat level-table vs pointer baseline.

Building ``T_K`` is the dominant cold-cache cost of every service session
and every experiment-grid cell, so the flat refactor of the grid engine is
gated the same way the batched selection step and the service layer are:

* **parity** — the flat :class:`~repro.tpo.builders.GridBuilder` must
  reproduce the pointer-era
  :class:`~repro.tpo._reference.ReferenceGridBuilder` leaf probabilities
  to ≤ 1e-9 (same leaves, same order, same masses);
* **throughput** — flat grid build must be ≥ 4× faster than the pointer
  baseline on the full-size instance.

Monte Carlo build throughput is measured alongside (informational, no
gate — its group-by was batched in the same refactor but has no preserved
baseline).  A third section exercises the **anytime beam**: an N=200
instance whose exact grid build overflows ``max_orderings`` must build to
full depth under ``beam_epsilon`` with certified lost mass within the
per-level budget (``lost_mass ≤ ε·K``).  Exit status is non-zero when a
gate fails, so CI can gate on it; ``--json PATH`` writes the measurements
as a provenance-stamped artifact (``BENCH_engines.json`` in CI) for
regression tracking.

Run:  PYTHONPATH=src python benchmarks/bench_engines.py [--smoke] [--json PATH]
      (or: python -m repro bench-engines [--smoke] [--json PATH])
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.api.catalog import ENGINES
from repro.tpo._reference import ReferenceGridBuilder
from repro.tpo.builders import TPOSizeError
from repro.tpo.space import OrderingSpace
from repro.utils.provenance import artifact_stamp
from repro.workloads.synthetic import uniform_intervals

SPEEDUP_FLOOR = 4.0
PARITY_ATOL = 1e-9


def best_of(callable_: Callable[[], Any], repetitions: int) -> float:
    """Minimum wall-clock of ``repetitions`` runs (noise-robust)."""
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


def leaf_parity(flat: OrderingSpace, reference: OrderingSpace) -> Dict[str, Any]:
    """Leaf-table agreement of the two grid paths.

    The flat path preserves the pointer-era depth-first leaf order
    (parent-major levels, candidates ascending), so the comparison is
    positional: same paths row for row, masses within ``PARITY_ATOL``.
    """
    same_shape = flat.paths.shape == reference.paths.shape
    same_order = bool(
        same_shape and np.array_equal(flat.paths, reference.paths)
    )
    if same_order:
        max_error = float(
            np.max(np.abs(flat.probabilities - reference.probabilities))
        )
    else:
        max_error = float("inf")
    return {
        "leaves": int(flat.size),
        "identical_leaf_order": same_order,
        "max_abs_error": max_error,
        "within_tolerance": same_order and max_error <= PARITY_ATOL,
    }


#: The beam section's instance: exact grid construction overflows the
#: ordering cap, the ε-beam builds it anytime with certified lost mass.
BEAM_N = 200
BEAM_K = 5
BEAM_WIDTH = 0.05
BEAM_RESOLUTION = 128
BEAM_MAX_ORDERINGS = 20000
BEAM_EPSILON = 0.02


def beam_section(repetitions: int = 1) -> Dict[str, Any]:
    """Anytime-beam reachability measurements (cheap; runs in smoke too).

    Gates: the exact grid engine must *fail* on the instance (otherwise
    the section measures nothing), the ε-beam engine must reach full
    depth K, and its certified loss must respect the per-level budget
    ``lost_mass ≤ ε·K``.
    """
    workload = uniform_intervals(BEAM_N, width=BEAM_WIDTH, rng=2016)
    exact_overflows = False
    try:
        ENGINES.create(
            "grid",
            resolution=BEAM_RESOLUTION,
            max_orderings=BEAM_MAX_ORDERINGS,
        ).build(workload, BEAM_K)
    except TPOSizeError:
        exact_overflows = True
    beam_builder = ENGINES.create(
        "grid",
        resolution=BEAM_RESOLUTION,
        max_orderings=BEAM_MAX_ORDERINGS,
        beam_epsilon=BEAM_EPSILON,
    )
    tree = beam_builder.build(workload, BEAM_K)
    beam_time = best_of(
        lambda: beam_builder.build(workload, BEAM_K), repetitions
    )
    budget = BEAM_EPSILON * BEAM_K
    return {
        "config": {
            "n": BEAM_N,
            "k": BEAM_K,
            "width": BEAM_WIDTH,
            "resolution": BEAM_RESOLUTION,
            "max_orderings": BEAM_MAX_ORDERINGS,
            "beam_epsilon": BEAM_EPSILON,
        },
        "exact_overflows": exact_overflows,
        "reached_depth": tree.built_depth,
        "reachable_leaves": int(tree.levels[-1].width),
        "lost_mass": float(tree.lost_mass),
        "lost_mass_budget": budget,
        "beam_seconds": beam_time,
        "within_budget": (
            exact_overflows
            and tree.built_depth == BEAM_K
            and tree.lost_mass <= budget
        ),
    }


def run(
    n: int = 18,
    k: int = 6,
    width: float = 0.35,
    resolution: int = 800,
    mc_samples: int = 200000,
    repetitions: int = 3,
    json_path: Optional[str] = None,
    smoke: bool = False,
) -> int:
    """Run the benchmark; returns the number of failed gates."""
    if smoke:
        n, k, width, resolution = 10, 4, 0.25, 320
        mc_samples, repetitions = 20000, 1
    workload = uniform_intervals(n, width=width, rng=2016)

    flat_builder = ENGINES.create(
        "grid", resolution=resolution, max_orderings=500000
    )
    reference_builder = ReferenceGridBuilder(
        resolution=resolution, max_orderings=500000
    )
    mc_builder = ENGINES.create(
        "mc", samples=mc_samples, seed=2016, max_orderings=500000
    )

    flat_space = flat_builder.build(workload, k).to_space()
    reference_space = reference_builder.build(workload, k).to_space()
    parity = leaf_parity(flat_space, reference_space)
    print(
        f"instance: N={n} K={k} width={width} resolution={resolution} → "
        f"L={flat_space.size} orderings"
    )
    print(
        f"parity   : leaf order identical={parity['identical_leaf_order']}, "
        f"max |Δp|={parity['max_abs_error']:.3g}"
    )

    flat_time = best_of(
        lambda: flat_builder.build(workload, k), repetitions
    )
    reference_time = best_of(
        lambda: reference_builder.build(workload, k), repetitions
    )
    mc_time = best_of(lambda: mc_builder.build(workload, k), repetitions)
    speedup = reference_time / flat_time if flat_time > 0 else float("inf")
    print(f"grid flat    : {flat_time:8.3f}s / build")
    print(f"grid pointer : {reference_time:8.3f}s / build")
    print(f"mc ({mc_samples} samples): {mc_time:8.3f}s / build")
    print(f"speedup      : {speedup:6.2f}x (flat over pointer baseline)")

    beam = beam_section(repetitions=repetitions)
    print(
        f"beam ε={BEAM_EPSILON} : N={BEAM_N} K={BEAM_K} → "
        f"{beam['reachable_leaves']} reachable leaves in "
        f"{beam['beam_seconds']:.3f}s, lost mass "
        f"{beam['lost_mass']:.4f} ≤ {beam['lost_mass_budget']:.4f} "
        f"(exact overflows: {beam['exact_overflows']})"
    )

    failures = 0
    if not parity["within_tolerance"]:
        print(f"  FAIL: grid paths disagree beyond {PARITY_ATOL}")
        failures += 1
    if not smoke and speedup < SPEEDUP_FLOOR:
        print(f"  FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
        failures += 1
    if not beam["within_budget"]:
        print("  FAIL: beam section missed a reachability/loss gate")
        failures += 1

    if json_path is not None:
        artifact = {
            "benchmark": "bench_engines",
            **artifact_stamp(),
            "config": {
                "n": n,
                "k": k,
                "width": width,
                "resolution": resolution,
                "mc_samples": mc_samples,
                "repetitions": repetitions,
                "smoke": smoke,
            },
            "parity": parity,
            "grid_flat_seconds": flat_time,
            "grid_pointer_seconds": reference_time,
            "mc_seconds": mc_time,
            "speedup": speedup,
            "beam": beam,
            "gates": {
                "parity_atol": PARITY_ATOL,
                "speedup_floor": SPEEDUP_FLOOR,
                "gated": not smoke,
            },
            "failures": failures,
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {json_path}")

    print("PASS" if failures == 0 else f"{failures} check(s) FAILED")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=18, help="number of tuples")
    parser.add_argument("--k", type=int, default=6, help="top-K depth")
    parser.add_argument("--width", type=float, default=0.35, help="pdf width")
    parser.add_argument(
        "--resolution", type=int, default=800, help="grid resolution"
    )
    parser.add_argument(
        "--mc-samples", type=int, default=200000, help="Monte Carlo samples"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="timing repetitions"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, parity gate only (CI smoke / laptops)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write measurements as a JSON artifact (BENCH_engines.json)",
    )
    args = parser.parse_args(argv)
    return run(
        n=args.n,
        k=args.k,
        width=args.width,
        resolution=args.resolution,
        mc_samples=args.mc_samples,
        repetitions=args.repetitions,
        json_path=args.json,
        smoke=args.smoke,
    )


__all__ = ["run", "main", "leaf_parity", "best_of", "beam_section"]
