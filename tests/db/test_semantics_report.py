"""Tests for the semantics read-out on query results."""

import numpy as np
import pytest

from repro.db import UncertainTable, topk
from repro.distributions import Uniform


@pytest.fixture
def table():
    t = UncertainTable("cities")
    rng = np.random.default_rng(12)
    for name in ["milan", "rome", "turin", "naples", "genoa", "bari"]:
        c = rng.random()
        t.insert(name, score=Uniform(c, c + 0.4))
    return t


def test_semantics_report_uses_row_keys(table):
    result = topk(table, 3, attribute="score")
    text = result.semantics_report(threshold=0.1)
    assert "U-Top-3" in text
    assert "U-kRanks" in text
    # Row keys substituted for tuple indices.
    assert any(name in text for name in table.keys())
    assert "t0" not in text.split("expected ranks")[0] or "turin" in text


def test_semantics_report_threshold_changes_ptk(table):
    result = topk(table, 3, attribute="score")
    loose = result.semantics_report(threshold=0.0)
    strict = result.semantics_report(threshold=0.95)
    # A stricter threshold can only shrink the PT-k line.
    loose_ptk = loose.split("PT-3")[1].splitlines()[0]
    strict_ptk = strict.split("PT-3")[1].splitlines()[0]
    assert len(strict_ptk) <= len(loose_ptk)


def test_ordering_keys_helper(table):
    result = topk(table, 2, attribute="score")
    keys = result.ordering_keys(result.space.paths[0])
    assert len(keys) == 2
    assert all(isinstance(k, str) for k in keys)
