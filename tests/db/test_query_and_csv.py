"""Tests for the top-K query API and CSV I/O."""

import numpy as np
import pytest

from repro.crowd import GroundTruth, SimulatedCrowd
from repro.api import POLICIES
from repro.db import (
    AttributeScore,
    UncertainTable,
    crowdsourced_topk,
    read_table,
    topk,
    write_table,
)
from repro.distributions import TruncatedGaussian, Uniform


@pytest.fixture
def table():
    t = UncertainTable("scores")
    rng = np.random.default_rng(8)
    for index in range(7):
        c = rng.random()
        t.insert(f"row-{index}", score=Uniform(c, c + 0.4))
    return t


class TestTopK:
    def test_returns_consistent_result(self, table):
        result = topk(table, 3, attribute="score")
        assert result.k == 3
        assert result.space.depth == 3
        assert result.uncertainty >= 0.0
        assert len(result.ranked_keys()) == 3
        assert all(key.startswith("row-") for key in result.ranked_keys())

    def test_questions_are_relevant_pairs(self, table):
        result = topk(table, 3, attribute="score")
        for question in result.questions:
            di = result.distributions[question.i]
            dj = result.distributions[question.j]
            assert di.overlaps(dj)

    def test_engine_selection(self, table):
        grid = topk(table, 2, attribute="score", engine="grid")
        mc = topk(table, 2, attribute="score", engine="mc", samples=20000, seed=1)
        assert mc.space.depth == grid.space.depth

    def test_describe_mentions_table(self, table):
        text = topk(table, 2, attribute="score").describe()
        assert "scores" in text
        assert "orderings" in text

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            topk(UncertainTable(), 3, attribute="score")

    def test_scoring_function_path(self, table):
        result = topk(table, 2, scoring=AttributeScore("score"))
        assert result.k == 2


class TestCrowdsourcedTopK:
    def test_end_to_end(self, table):
        dists = table.score_distributions(attribute="score")
        truth = GroundTruth.sample(dists, rng=4)
        crowd = SimulatedCrowd(truth, rng=np.random.default_rng(0))
        result = crowdsourced_topk(
            table,
            3,
            budget=6,
            policy=POLICIES.create("T1-on"),
            crowd=crowd,
            attribute="score",
            rng=1,
        )
        assert result.distance_to_truth <= result.initial_distance + 1e-9
        assert result.questions_asked <= 6


class TestCsvIO:
    def test_roundtrip_uniform_and_gaussian(self, tmp_path):
        table = UncertainTable("t")
        table.insert("x", score=Uniform(0.1, 0.7), temp=TruncatedGaussian(20, 2))
        table.insert("y", score=Uniform(0.2, 0.9), temp=TruncatedGaussian(25, 1))
        path = tmp_path / "t.csv"
        write_table(table, path, ["score", "temp"])
        loaded = read_table(path)
        assert len(loaded) == 2
        score = loaded.by_key("x").attribute_distribution("score")
        assert isinstance(score, Uniform)
        assert score.support == pytest.approx((0.1, 0.7))
        temp = loaded.by_key("y").attribute_distribution("temp")
        assert isinstance(temp, TruncatedGaussian)
        assert temp.mu == pytest.approx(25)

    def test_read_parses_samples_and_plain_columns(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "key,rating_samples,price,city\n"
            'a,"1;2;2;3",12.5,milan\n'
            'b,"4;5;4",8.0,rome\n'
        )
        table = read_table(path)
        rating = table.by_key("a").attribute_distribution("rating")
        assert rating.lower >= 1.0
        assert table.by_key("b").attributes["price"] == 8.0
        assert table.by_key("a").attributes["city"] == "milan"

    def test_read_requires_key_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,score\na,1\n")
        with pytest.raises(ValueError):
            read_table(path)

    def test_queryable_after_roundtrip(self, tmp_path):
        table = UncertainTable("t")
        for index in range(5):
            table.insert(f"r{index}", score=Uniform(index * 0.1, index * 0.1 + 0.3))
        path = tmp_path / "q.csv"
        write_table(table, path, ["score"])
        result = topk(read_table(path), 2, attribute="score")
        assert result.space.size >= 1
