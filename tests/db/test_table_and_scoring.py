"""Tests for the uncertain-relational layer: tables and scoring."""

import pytest

from repro.db import AttributeScore, LinearScore, UncertainTable
from repro.db.table import UncertainTuple
from repro.distributions import PointMass, TruncatedGaussian, Uniform
from repro.distributions.affine import AffineDistribution
from repro.distributions.histogram import Histogram


@pytest.fixture
def table():
    t = UncertainTable("demo")
    t.insert("a", quality=Uniform(0.0, 1.0), price=10.0, city="milan")
    t.insert("b", quality=Uniform(0.5, 1.5), price=20.0, city="rome")
    t.insert("c", quality=0.75, price=5.0, city="milan")
    return t


class TestTable:
    def test_insert_and_lookup(self, table):
        assert len(table) == 3
        assert table.index_of("b") == 1
        assert table.by_key("c").attributes["price"] == 5.0
        assert table.keys() == ["a", "b", "c"]

    def test_duplicate_key_rejected(self, table):
        with pytest.raises(ValueError):
            table.insert("a", quality=1.0)

    def test_extend_checks_duplicates(self, table):
        with pytest.raises(ValueError):
            table.extend([UncertainTuple("a")])
        table.extend([UncertainTuple("d", {"quality": 0.1})])
        assert len(table) == 4

    def test_iteration_order(self, table):
        assert [row.key for row in table] == ["a", "b", "c"]

    def test_attribute_distribution_coercion(self, table):
        dist = table.by_key("c").attribute_distribution("quality")
        assert isinstance(dist, PointMass)
        with pytest.raises(TypeError):
            table.by_key("a").attribute_distribution("city")

    def test_score_distributions_requires_one_source(self, table):
        with pytest.raises(ValueError):
            table.score_distributions()
        with pytest.raises(ValueError):
            table.score_distributions(
                scoring=AttributeScore("quality"), attribute="quality"
            )

    def test_score_distributions_by_attribute(self, table):
        dists = table.score_distributions(attribute="quality")
        assert len(dists) == 3
        assert isinstance(dists[0], Uniform)
        assert isinstance(dists[2], PointMass)


class TestAttributeScore:
    def test_projects_attribute(self, table):
        scoring = AttributeScore("quality")
        assert scoring(table[0]).support == (0.0, 1.0)


class TestLinearScore:
    def test_certain_only_gives_point_mass(self, table):
        scoring = LinearScore({"price": -1.0}, bias=100.0)
        dist = scoring(table.by_key("c"))
        assert isinstance(dist, PointMass)
        assert dist.value == pytest.approx(95.0)

    def test_single_uncertain_is_affine_exact(self, table):
        scoring = LinearScore({"quality": 2.0, "price": -0.1})
        dist = scoring(table.by_key("a"))
        assert isinstance(dist, AffineDistribution)
        assert dist.mean() == pytest.approx(2.0 * 0.5 - 1.0)
        assert dist.support == (-1.0, 1.0)

    def test_two_uncertain_attributes_give_histogram(self):
        row = UncertainTuple(
            "x",
            {"a": Uniform(0, 1), "b": TruncatedGaussian(0.5, 0.1)},
        )
        scoring = LinearScore({"a": 1.0, "b": 1.0}, rng=0)
        dist = scoring(row)
        assert isinstance(dist, Histogram)
        assert dist.mean() == pytest.approx(1.0, abs=0.03)

    def test_zero_weight_ignored(self, table):
        scoring = LinearScore({"quality": 0.0, "price": 1.0})
        assert isinstance(scoring(table.by_key("a")), PointMass)

    def test_requires_weights(self):
        with pytest.raises(ValueError):
            LinearScore({})
