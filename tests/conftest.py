"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.distributions.uniform import Uniform
from repro.tpo.builders import GridBuilder
from repro.tpo.space import OrderingSpace


@pytest.fixture
def rng():
    """A fixed-seed generator; tests stay deterministic."""
    return np.random.default_rng(12345)


@pytest.fixture
def overlapping_uniforms():
    """Five uniforms with enough overlap for a non-trivial TPO."""
    centers = [0.05, 0.2, 0.35, 0.45, 0.6]
    return [Uniform(c, c + 0.3) for c in centers]


@pytest.fixture
def small_tree(overlapping_uniforms):
    """A complete grid-built depth-3 TPO over the five uniforms."""
    return GridBuilder(resolution=600).build(overlapping_uniforms, 3)


@pytest.fixture
def small_space(small_tree):
    """The flattened ordering space of :func:`small_tree`."""
    return small_tree.to_space()


@pytest.fixture
def toy_space():
    """A hand-built 4-ordering space over 4 tuples (easy to reason about).

    Paths (depth 2):  [0,1] 0.4 | [1,0] 0.3 | [0,2] 0.2 | [2,3] 0.1
    """
    paths = [[0, 1], [1, 0], [0, 2], [2, 3]]
    probs = [0.4, 0.3, 0.2, 0.1]
    return OrderingSpace.from_orderings(paths, probs, 4)


@pytest.fixture
def truth_factory():
    """Factory for ground truths over explicit score vectors."""

    def make(scores):
        return GroundTruth(scores)

    return make


@pytest.fixture
def perfect_crowd_factory():
    """Factory building a reliable crowd for a given score vector."""

    def make(scores, seed=0):
        truth = GroundTruth(scores)
        return SimulatedCrowd(
            truth, worker_accuracy=1.0, rng=np.random.default_rng(seed)
        )

    return make
