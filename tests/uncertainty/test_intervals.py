"""Certified uncertainty intervals: beam interval must contain exact value.

The epistemic contract of ``UncertaintyMeasure.evaluate_interval``: on a
beam-approximate space, the returned ``[lo, hi]`` must bracket the value
the measure would report on the *exact* space of the same instance.  The
property is checked end to end — build exact, build beamed, compare —
for all four paper measures on random mixed-overlap workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Uniform
from repro.tpo.builders import GridBuilder
from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import EntropyMeasure, WeightedEntropyMeasure
from repro.uncertainty.representative import MPOUncertainty, ORAUncertainty

#: fp tolerance at interval endpoints: the exact and conditional builds
#: sum the same masses in different orders.
ATOL = 1e-9

MEASURES = [
    EntropyMeasure(),
    WeightedEntropyMeasure(),
    ORAUncertainty(),
    MPOUncertainty(),
]


@st.composite
def mixed_workloads(draw):
    """4–7 uniforms mixing tight and wide overlap."""
    n = draw(st.integers(min_value=4, max_value=7))
    dists = []
    for _ in range(n):
        center = draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        width = draw(
            st.floats(min_value=0.05, max_value=0.8, allow_nan=False)
        )
        dists.append(Uniform(center, center + width))
    return dists


@given(
    mixed_workloads(),
    st.integers(min_value=2, max_value=4),
    st.sampled_from([0.01, 0.05, 0.15]),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_beam_interval_contains_exact_value(dists, k, epsilon, measure_idx):
    measure = MEASURES[measure_idx]
    k = min(k, len(dists))
    exact_space = GridBuilder(resolution=200).build(dists, k).to_space()
    beam_space = (
        GridBuilder(resolution=200, beam_epsilon=epsilon)
        .build(dists, k)
        .to_space()
    )
    exact_value = float(measure(exact_space))
    lo, hi = measure.evaluate_interval(beam_space)
    assert lo <= hi + ATOL
    assert lo - ATOL <= exact_value <= hi + ATOL, (
        f"{type(measure).__name__}: exact {exact_value} outside "
        f"[{lo}, {hi}] at ε={epsilon}, δ={beam_space.lost_mass}"
    )


class TestExactIntervals:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_exact_space_interval_is_degenerate(self, measure, small_space):
        value = float(measure(small_space))
        assert measure.evaluate_interval(small_space) == (value, value)

    def test_base_measure_falls_back_to_vacuous(self, small_space):
        class Opaque(UncertaintyMeasure):
            name = "opaque"

            def __call__(self, space):
                return 0.25

        exact = Opaque().evaluate_interval(small_space)
        assert exact == (0.25, 0.25)
        approx = type(small_space)(
            small_space.paths,
            small_space.probabilities,
            small_space.n_tuples,
            lost_mass=0.1,
            lost_leaves=4.0,
        )
        lo, hi = Opaque().evaluate_interval(approx)
        assert lo == 0.0 and hi == float("inf")


class TestIntervalAwareSelection:
    def test_ranking_slack_zero_on_exact(self, small_space):
        from repro.questions.residual import ResidualEvaluator

        evaluator = ResidualEvaluator(EntropyMeasure())
        assert evaluator.ranking_slack(small_space) == 0.0

    def test_ranking_slack_positive_on_beam(self, overlapping_uniforms):
        from repro.questions.residual import ResidualEvaluator

        space = (
            GridBuilder(resolution=256, beam_epsilon=0.05)
            .build(overlapping_uniforms, 3)
            .to_space()
        )
        assert space.lost_mass > 0.0
        evaluator = ResidualEvaluator(EntropyMeasure())
        assert evaluator.ranking_slack(space) > 0.0

    def test_select_min_residual_semantics(self):
        from repro.questions.residual import select_min_residual

        residuals = np.array([0.5, 0.42, 0.4, 0.41])
        assert select_min_residual(residuals, 0.0) == 2
        # Within-slack ties resolve to the first candidate in order.
        assert select_min_residual(residuals, 0.02) == 1
        assert select_min_residual(residuals, np.inf) == 0
        with pytest.raises(ValueError):
            select_min_residual(np.array([]), 0.0)
