"""Tests for the four uncertainty measures."""

import numpy as np
import pytest

from repro.tpo.space import OrderingSpace
from repro.api import MEASURES
from repro.uncertainty import (
    EntropyMeasure,
    MPOUncertainty,
    ORAUncertainty,
    WeightedEntropyMeasure,
    available_measures,
    get_measure,
    linear_level_weights,
    register_measure,
    shannon_entropy,
)

ALL_MEASURES = [
    EntropyMeasure(),
    WeightedEntropyMeasure(),
    ORAUncertainty(method="exact"),
    MPOUncertainty(),
]


@pytest.fixture
def certain_space():
    return OrderingSpace.from_orderings([[0, 1, 2]], [1.0], 4)


@pytest.mark.parametrize("measure", ALL_MEASURES, ids=lambda m: m.name)
class TestMeasureContract:
    def test_zero_on_certainty(self, measure, certain_space):
        assert measure(certain_space) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self, measure, toy_space):
        assert measure(toy_space) >= 0.0

    def test_positive_on_uncertain_space(self, measure, toy_space):
        assert measure(toy_space) > 0.0

    def test_deterministic(self, measure, toy_space):
        assert measure(toy_space) == pytest.approx(measure(toy_space))


class TestShannonEntropy:
    def test_uniform_distribution(self):
        assert shannon_entropy(np.ones(8) / 8) == pytest.approx(3.0)

    def test_singleton_is_zero(self):
        assert shannon_entropy(np.array([1.0])) == 0.0

    def test_ignores_zero_entries(self):
        with_zero = shannon_entropy(np.array([0.5, 0.5, 0.0]))
        without = shannon_entropy(np.array([0.5, 0.5]))
        assert with_zero == pytest.approx(without)

    def test_base_parameter(self):
        masses = np.ones(4) / 4
        assert shannon_entropy(masses, base=4.0) == pytest.approx(1.0)

    def test_measure_base_validation(self):
        with pytest.raises(ValueError):
            EntropyMeasure(base=1.0)


class TestEntropyOnSpaces:
    def test_uniform_leaf_distribution(self):
        paths = [[0, 1], [1, 0], [0, 2], [2, 0]]
        space = OrderingSpace.from_orderings(paths, [0.25] * 4, 3)
        assert EntropyMeasure()(space) == pytest.approx(2.0)

    def test_conditioning_reduces_expected_entropy(self, small_space):
        """Conditioning cannot raise entropy in expectation (data
        processing); the two-outcome average must be ≤ the prior."""
        measure = EntropyMeasure()
        prior = measure(small_space)
        codes = small_space.agreement_codes(0, 1)
        mass_yes = small_space.probabilities[codes == 1].sum()
        mass_no = small_space.probabilities[codes == -1].sum()
        if mass_yes == 0 or mass_no == 0:
            pytest.skip("pair decided in this instance")
        p_yes = mass_yes / (mass_yes + mass_no)
        posterior = p_yes * measure(
            small_space.restrict(codes != -1)
        ) + (1 - p_yes) * measure(small_space.restrict(codes != 1))
        assert posterior <= prior + 1e-9


class TestWeightedEntropy:
    def test_default_weights_decrease(self):
        weights = linear_level_weights(5)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) < 0).all()

    def test_explicit_weights(self, toy_space):
        top_only = WeightedEntropyMeasure(weights=[1.0, 0.0])
        _, level1 = toy_space.prefix_groups(1)
        assert top_only(toy_space) == pytest.approx(
            shannon_entropy(level1)
        )

    def test_callable_weights(self, toy_space):
        measure = WeightedEntropyMeasure(weights=lambda k: np.ones(k))
        assert measure(toy_space) > 0

    def test_weight_validation(self, toy_space):
        with pytest.raises(ValueError):
            WeightedEntropyMeasure(weights=[1.0])(toy_space)
        with pytest.raises(ValueError):
            WeightedEntropyMeasure(weights=[0.0, 0.0])(toy_space)

    def test_distinguishes_structure(self):
        """Two spaces with equal leaf entropy but different level-1
        agreement: U_H ties, U_Hw tells them apart."""
        agree_top = OrderingSpace.from_orderings(
            [[0, 1], [0, 2]], [0.5, 0.5], 3
        )
        disagree_top = OrderingSpace.from_orderings(
            [[0, 1], [2, 1]], [0.5, 0.5], 3
        )
        assert EntropyMeasure()(agree_top) == pytest.approx(
            EntropyMeasure()(disagree_top)
        )
        assert WeightedEntropyMeasure()(agree_top) < (
            WeightedEntropyMeasure()(disagree_top)
        )


class TestRepresentativeMeasures:
    def test_ora_not_above_mpo(self, toy_space):
        """With exact aggregation the ORA minimizes the expected distance,
        so U_ORA ≤ U_MPO."""
        assert ORAUncertainty(method="exact")(toy_space) <= (
            MPOUncertainty()(toy_space) + 1e-12
        )

    def test_mpo_uses_modal_ordering(self, toy_space):
        from repro.rank import expected_topk_distance

        expected = expected_topk_distance(
            toy_space, toy_space.most_probable_ordering()
        )
        assert MPOUncertainty()(toy_space) == pytest.approx(expected)

    def test_ora_methods_agree_on_easy_space(self):
        paths = [[0, 1], [0, 2]]
        space = OrderingSpace.from_orderings(paths, [0.8, 0.2], 3)
        exact_value = ORAUncertainty(method="exact")(space)
        borda_value = ORAUncertainty(method="borda")(space)
        assert borda_value == pytest.approx(exact_value, abs=1e-9)


class TestRegistry:
    """The unified ``repro.api.MEASURES`` registry."""

    def test_paper_names_available(self):
        for name in ("H", "Hw", "ORA", "MPO"):
            assert name in MEASURES.available()
            assert MEASURES.create(name).name == name

    def test_kwargs_forwarded(self):
        measure = MEASURES.create("ORA", method="exact")
        assert measure.method == "exact"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            MEASURES.create("XYZ")


class TestDeprecatedShims:
    """The historical entry points still work, but warn."""

    def test_get_measure(self):
        with pytest.warns(DeprecationWarning, match="MEASURES.create"):
            measure = get_measure("ORA", method="exact")
        assert measure.method == "exact"

    def test_get_measure_unknown_name(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                get_measure("XYZ")

    def test_available_measures(self):
        with pytest.warns(DeprecationWarning):
            names = available_measures()
        assert names == MEASURES.available()

    def test_register_custom(self, toy_space):
        class Flat(EntropyMeasure):
            name = "flat"

        try:
            with pytest.warns(DeprecationWarning):
                register_measure("flat", Flat)
            assert "flat" in MEASURES.available()
            with pytest.warns(DeprecationWarning):
                assert get_measure("flat")(toy_space) >= 0
        finally:
            MEASURES.unregister("flat")
