"""Executable version of Theorem 3.1: no deterministic UR algorithm is optimal.

The theorem says: no deterministic uncertainty-reduction algorithm asks a
*minimal* sequence of questions for every ground truth.  The proof idea is
adversarial — whatever first question a deterministic algorithm commits to,
some ground truth makes that question wasteful while a clairvoyant
questioner (who may pick a different first question per world) finishes
faster.

This test constructs a concrete three-tuple instance and verifies the
adversarial argument computationally: for every possible first question
there exists a world in which the remaining uncertainty still needs 2 more
questions, while for that same world a different question order resolves
everything in 2 questions total.
"""

import itertools

import pytest

from repro.questions import Question
from repro.tpo.space import DegenerateSpaceError, OrderingSpace


@pytest.fixture
def full_permutation_space():
    """All 6 orderings of 3 tuples, uniform — maximal uncertainty."""
    paths = list(itertools.permutations(range(3)))
    return OrderingSpace.from_orderings(paths, [1 / 6] * 6, 3)


def questions_to_resolve(space, world):
    """Minimum #questions a clairvoyant asker needs to isolate ``world``.

    Brute-force over question sequences (the instance is tiny): the answer
    to each question is determined by ``world``; we search for the shortest
    prefix of questions whose answers leave exactly one ordering.
    """
    pool = [Question(i, j) for i in range(3) for j in range(i + 1, 3)]
    rank = {t: r for r, t in enumerate(world)}

    def answer(question):
        return rank[question.i] < rank[question.j]

    for length in range(0, len(pool) + 1):
        for sequence in itertools.permutations(pool, length):
            current = space
            try:
                for question in sequence:
                    current = current.condition(
                        question.i, question.j, answer(question)
                    )
            except DegenerateSpaceError:
                continue
            if current.is_certain:
                return length
    return len(pool)


def test_every_world_resolvable_in_two_questions(full_permutation_space):
    """A clairvoyant asker always finishes 3 tuples in 2 questions."""
    for world in itertools.permutations(range(3)):
        assert questions_to_resolve(full_permutation_space, world) == 2


def test_no_fixed_first_question_is_universally_minimal(
    full_permutation_space,
):
    """Theorem 3.1, adversarial step.

    For every deterministic first question q there is a world for which q
    was not part of ANY minimal resolving set — the algorithm then needs 3
    questions where the optimum is 2.
    """
    pool = [Question(0, 1), Question(0, 2), Question(1, 2)]
    for first in pool:
        adversarial_world_found = False
        for world in itertools.permutations(range(3)):
            rank = {t: r for r, t in enumerate(world)}
            holds = rank[first.i] < rank[first.j]
            after_first = full_permutation_space.condition(
                first.i, first.j, holds
            )
            # Best completion after committing to `first`:
            remaining_needed = questions_to_resolve(after_first, world)
            total_with_first = 1 + remaining_needed
            optimum = questions_to_resolve(full_permutation_space, world)
            if total_with_first > optimum:
                adversarial_world_found = True
                break
        assert adversarial_world_found, (
            f"first question {first} is universally minimal — "
            "Theorem 3.1 would be violated on this instance"
        )


def test_adaptive_beats_worst_case_fixed_order(full_permutation_space):
    """Sanity companion: an adaptive strategy exists with worst case 2,
    while any fixed (oblivious) 2-question set fails for some world."""
    pool = [Question(0, 1), Question(0, 2), Question(1, 2)]
    for fixed_pair in itertools.combinations(pool, 2):
        some_world_unresolved = False
        for world in itertools.permutations(range(3)):
            rank = {t: r for r, t in enumerate(world)}
            current = full_permutation_space
            for question in fixed_pair:
                holds = rank[question.i] < rank[question.j]
                current = current.condition(question.i, question.j, holds)
            if not current.is_certain:
                some_world_unresolved = True
                break
        assert some_world_unresolved, (
            f"fixed batch {fixed_pair} resolves every world — "
            "offline batches would be as strong as adaptive questioning"
        )
