"""Tests for the question-selection policies (offline and online)."""

import numpy as np
import pytest

from repro.core import POLICIES, make_policy
from repro.core.policies import (
    AStarOfflinePolicy,
    AStarOnlinePolicy,
    ConditionalPolicy,
    ExhaustivePolicy,
    NaivePolicy,
    RandomPolicy,
    Top1OnlinePolicy,
    TopBPolicy,
)
from repro.questions import (
    ResidualEvaluator,
    all_pair_questions,
    informative_questions,
)
from repro.uncertainty import EntropyMeasure


@pytest.fixture
def evaluator():
    return ResidualEvaluator(EntropyMeasure())


@pytest.fixture
def candidates(small_space):
    return informative_questions(small_space)


class TestFactory:
    def test_all_paper_names_present(self):
        expected = {
            "random", "naive", "TB-off", "C-off", "A*-off", "A*-on",
            "T1-on", "incr", "exhaustive",
        }
        assert expected == set(POLICIES)

    def test_registry_create(self):
        assert isinstance(POLICIES.create("TB-off"), TopBPolicy)
        assert POLICIES.create("incr", round_size=3).round_size == 3
        with pytest.raises(ValueError):
            POLICIES.create("greedy-magic")

    def test_make_policy_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="POLICIES.create"):
            assert isinstance(make_policy("TB-off"), TopBPolicy)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                make_policy("greedy-magic")


class TestBaselines:
    def test_random_selects_from_all_pairs(self, small_space, evaluator, rng):
        policy = RandomPolicy()
        pool = all_pair_questions(small_space)
        picked = policy.select(small_space, pool, 4, evaluator, rng)
        assert len(picked) == 4
        assert len(set(picked)) == 4
        assert all(q in pool for q in picked)

    def test_naive_selects_from_relevant(
        self, small_space, candidates, evaluator, rng
    ):
        policy = NaivePolicy()
        picked = policy.select(small_space, candidates, 3, evaluator, rng)
        assert len(picked) == min(3, len(candidates))
        assert all(q in candidates for q in picked)

    def test_budget_larger_than_pool(self, small_space, candidates, evaluator, rng):
        policy = NaivePolicy()
        picked = policy.select(
            small_space, candidates, len(candidates) + 10, evaluator, rng
        )
        assert sorted(picked) == sorted(candidates)


class TestTopB:
    def test_picks_individually_best(
        self, small_space, candidates, evaluator, rng
    ):
        policy = TopBPolicy()
        picked = policy.select(small_space, candidates, 2, evaluator, rng)
        residuals = evaluator.rank_singles(small_space, candidates)
        best_two = np.sort(residuals)[:2]
        picked_residuals = np.sort(
            [evaluator.single(small_space, q) for q in picked]
        )
        np.testing.assert_allclose(picked_residuals, best_two)

    def test_zero_budget(self, small_space, candidates, evaluator, rng):
        assert TopBPolicy().select(small_space, candidates, 0, evaluator, rng) == []


class TestConditional:
    def test_first_pick_matches_topb(
        self, small_space, candidates, evaluator, rng
    ):
        """C-off's first greedy pick minimizes the single-question residual
        on decisive pairs, like TB-off's best-ranked question."""
        c_off = ConditionalPolicy().select(
            small_space, candidates, 1, evaluator, rng
        )
        codes = evaluator.codes_matrix(small_space, candidates)
        values = [
            evaluator.set_residual_from_codes(small_space, codes[:, [i]])
            for i in range(len(candidates))
        ]
        assert c_off[0] == candidates[int(np.argmin(values))]

    def test_no_duplicate_questions(
        self, small_space, candidates, evaluator, rng
    ):
        picked = ConditionalPolicy().select(
            small_space, candidates, 4, evaluator, rng
        )
        assert len(set(picked)) == len(picked)

    def test_joint_residual_beats_or_ties_topb(
        self, small_space, candidates, evaluator, rng
    ):
        """Greedy joint selection is at least as good as scoring questions
        independently, measured on the joint objective."""
        budget = 3
        c_off = ConditionalPolicy().select(
            small_space, candidates, budget, evaluator, rng
        )
        tb = TopBPolicy().select(small_space, candidates, budget, evaluator, rng)
        assert evaluator.question_set(small_space, c_off) <= (
            evaluator.question_set(small_space, tb) + 1e-9
        )


class TestAStarOffline:
    def test_matches_exhaustive_optimum(
        self, small_space, candidates, evaluator, rng
    ):
        """Theorem 3.2: A*-off is offline-optimal (validated brute-force)."""
        budget = 2
        astar = AStarOfflinePolicy()
        exhaustive = ExhaustivePolicy()
        astar_set = astar.select(small_space, candidates, budget, evaluator, rng)
        exhaustive.select(small_space, candidates, budget, evaluator, rng)
        astar_value = evaluator.question_set(small_space, astar_set)
        assert astar.last_search_complete
        assert astar_value == pytest.approx(
            exhaustive.last_best_residual, abs=1e-9
        )

    def test_respects_budget(self, small_space, candidates, evaluator, rng):
        picked = AStarOfflinePolicy().select(
            small_space, candidates, 3, evaluator, rng
        )
        assert len(picked) <= 3
        assert len(set(picked)) == len(picked)

    def test_expansion_cap_falls_back_to_greedy(
        self, small_space, candidates, evaluator, rng
    ):
        policy = AStarOfflinePolicy(max_expansions=1)
        picked = policy.select(small_space, candidates, 3, evaluator, rng)
        assert len(picked) == 3
        assert not policy.last_search_complete

    def test_certain_space_needs_no_questions(self, evaluator, rng):
        from repro.tpo.space import OrderingSpace

        space = OrderingSpace.from_orderings([[0, 1]], [1.0], 3)
        picked = AStarOfflinePolicy().select(
            space, [], 3, evaluator, rng
        )
        assert picked == []

    def test_validation(self):
        with pytest.raises(ValueError):
            AStarOfflinePolicy(max_expansions=0)


class TestExhaustive:
    def test_subset_guard(self, small_space, evaluator, rng):
        policy = ExhaustivePolicy(max_subsets=2)
        many = informative_questions(small_space)
        if len(many) < 4:
            pytest.skip("instance too small")
        with pytest.raises(ValueError):
            policy.select(small_space, many, 3, evaluator, rng)


class TestOnline:
    def test_top1_picks_argmin(self, small_space, candidates, evaluator, rng):
        policy = Top1OnlinePolicy()
        question = policy.next_question(
            small_space, candidates, 5, evaluator, rng
        )
        residuals = evaluator.rank_singles(small_space, candidates)
        assert question == candidates[int(np.argmin(residuals))]

    def test_top1_terminates_on_certainty(self, evaluator, rng):
        from repro.tpo.space import OrderingSpace

        space = OrderingSpace.from_orderings([[0, 1]], [1.0], 3)
        assert Top1OnlinePolicy().next_question(
            space, [], 5, evaluator, rng
        ) is None

    def test_top1_terminates_on_exhausted_budget(
        self, small_space, candidates, evaluator, rng
    ):
        assert Top1OnlinePolicy().next_question(
            small_space, candidates, 0, evaluator, rng
        ) is None

    def test_astar_on_first_question_of_plan(
        self, small_space, candidates, evaluator, rng
    ):
        online = AStarOnlinePolicy()
        offline = AStarOfflinePolicy()
        question = online.next_question(
            small_space, candidates, 2, evaluator, rng
        )
        plan = offline.select(small_space, candidates, 2, evaluator, rng)
        assert question == plan[0]
