"""Tests for the value-of-information stopping wrapper."""

import numpy as np
import pytest

from repro.api import POLICIES
from repro.core import (
    Top1OnlinePolicy,
    UncertaintyReductionSession,
    ValueOfInformationStopper,
)
from repro.crowd import GroundTruth, SimulatedCrowd
from repro.distributions import Uniform
from repro.questions import ResidualEvaluator, informative_questions
from repro.tpo import GridBuilder
from repro.uncertainty import EntropyMeasure


@pytest.fixture
def instance():
    rng = np.random.default_rng(6)
    dists = [Uniform(c, c + 0.3) for c in rng.random(9)]
    truth = GroundTruth.sample(dists, rng=2)
    return dists, truth


def make_session(dists, truth, seed=0):
    crowd = SimulatedCrowd(truth, rng=np.random.default_rng(seed))
    return UncertaintyReductionSession(
        dists, 4, crowd,
        builder=GridBuilder(resolution=500),
        rng=np.random.default_rng(seed + 1),
    )


class TestWrapperMechanics:
    def test_name_and_pool_follow_inner(self):
        wrapped = ValueOfInformationStopper(Top1OnlinePolicy(), 0.1)
        assert "T1-on" in wrapped.name
        assert wrapped.pool == Top1OnlinePolicy.pool

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ValueOfInformationStopper(Top1OnlinePolicy(), 0.0)

    def test_huge_threshold_stops_immediately(self, instance, small_space):
        dists, truth = instance
        wrapped = ValueOfInformationStopper(Top1OnlinePolicy(), 1e6)
        evaluator = ResidualEvaluator(EntropyMeasure())
        candidates = informative_questions(small_space)
        rng = np.random.default_rng(0)
        assert wrapped.next_question(
            small_space, candidates, 5, evaluator, rng
        ) is None
        assert wrapped.stopped_economically

    def test_tiny_threshold_is_transparent(self, small_space):
        wrapped = ValueOfInformationStopper(Top1OnlinePolicy(), 1e-9)
        inner = Top1OnlinePolicy()
        evaluator = ResidualEvaluator(EntropyMeasure())
        candidates = informative_questions(small_space)
        rng = np.random.default_rng(0)
        assert wrapped.next_question(
            small_space, candidates, 5, evaluator, rng
        ) == inner.next_question(small_space, candidates, 5, evaluator, rng)


class TestWrapperInSessions:
    def test_saves_questions_with_bounded_quality_loss(self, instance):
        dists, truth = instance
        budget = 30
        plain = make_session(dists, truth).run(POLICIES.create("T1-on"), budget)
        frugal = make_session(dists, truth).run(
            ValueOfInformationStopper(Top1OnlinePolicy(), 0.3), budget
        )
        assert frugal.questions_asked <= plain.questions_asked
        # Stopping early may leave residual distance, but bounded.
        assert frugal.distance_to_truth <= plain.distance_to_truth + 0.15

    def test_zero_uncertainty_stops_anyway(self, instance):
        dists, truth = instance
        session = make_session(dists, truth)
        result = session.run(
            ValueOfInformationStopper(Top1OnlinePolicy(), 1e-6), 200
        )
        # Terminates (either certain or nothing worth asking).
        assert result.questions_asked < 200
