"""Snapshot/restore round-trip of the interactive session API."""

import numpy as np
import pytest

from repro.core.session import InteractiveSession, SessionSnapshot
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.tpo.builders import GridBuilder
from repro.workloads.synthetic import uniform_intervals


def build_instance(n=10, k=4, width=0.35, seed=11):
    distributions = uniform_intervals(n, width=width, rng=seed)
    space = GridBuilder(resolution=512).build(distributions, k).to_space()
    return distributions, space


def make_crowd(distributions, seed=11):
    truth = GroundTruth.sample(distributions, np.random.default_rng(seed))
    return SimulatedCrowd(truth, worker_accuracy=1.0)


def drive(session, crowd, steps):
    """Answer up to ``steps`` questions; returns how many were applied."""
    applied = 0
    for _ in range(steps):
        question = session.next_question()
        if question is None:
            break
        answer = crowd.ask(question)
        session.submit_answer(
            question, answer.holds, accuracy=answer.accuracy
        )
        applied += 1
    return applied


class TestInteractiveSession:
    def test_questions_shrink_the_space(self):
        distributions, space = build_instance()
        session = InteractiveSession(distributions, 4, space)
        crowd = make_crowd(distributions)
        initial = session.space.size
        assert drive(session, crowd, 5) > 0
        assert session.space.size < initial
        assert session.questions_asked == len(session.answers)

    def test_next_question_is_deterministic(self):
        distributions, space = build_instance()
        first = InteractiveSession(distributions, 4, space)
        second = InteractiveSession(distributions, 4, space)
        assert first.next_question() == second.next_question()

    def test_settled_session_returns_none(self):
        distributions, space = build_instance(n=5, k=2, width=0.05)
        session = InteractiveSession(distributions, 2, space)
        crowd = make_crowd(distributions)
        drive(session, crowd, 50)
        assert session.next_question() is None

    def test_noncanonical_pair_is_rejected_by_question(self):
        # Canonicalization happens in Question itself; the session only
        # ever sees canonical pairs.
        distributions, space = build_instance()
        session = InteractiveSession(distributions, 4, space)
        question = session.next_question()
        assert question.i < question.j


class TestSnapshotRoundTrip:
    def test_snapshot_serializes_to_plain_json(self):
        distributions, space = build_instance()
        session = InteractiveSession(distributions, 4, space)
        crowd = make_crowd(distributions)
        drive(session, crowd, 3)
        data = session.snapshot().to_dict()
        assert data["k"] == 4
        assert len(data["answers"]) == 3
        restored = SessionSnapshot.from_dict(data)
        assert restored == session.snapshot()

    def test_restore_reproduces_remaining_ranking_and_topk(self):
        """The acceptance property: serialize mid-session, restore, and the
        remaining-question ranking and the final top-K equal those of an
        uninterrupted run."""
        distributions, space = build_instance(n=12, k=4, seed=7)
        crowd = make_crowd(distributions, seed=7)

        uninterrupted = InteractiveSession(distributions, 4, space)
        drive(uninterrupted, crowd, 4)
        mid_snapshot = uninterrupted.snapshot()
        # Ranking over the remaining questions at the cut point.
        expected_candidates, expected_residuals = uninterrupted.ranking()

        restored = InteractiveSession.restore(
            mid_snapshot, distributions, space
        )
        candidates, residuals = restored.ranking()
        assert candidates == expected_candidates
        np.testing.assert_allclose(residuals, expected_residuals, atol=0)
        assert restored.space.size == uninterrupted.space.size
        np.testing.assert_array_equal(
            restored.space.probabilities, uninterrupted.space.probabilities
        )

        # Drive both to completion: identical questions, identical top-K.
        drive(uninterrupted, crowd, 100)
        drive(restored, crowd, 100)
        assert restored.answers_key() == uninterrupted.answers_key()
        assert restored.top_k() == uninterrupted.top_k()

    def test_restore_replays_noisy_answers(self):
        distributions, space = build_instance(n=8, k=3, seed=3)
        session = InteractiveSession(distributions, 3, space)
        question = session.next_question()
        session.submit_answer(question, True, accuracy=0.8)
        restored = InteractiveSession.restore(
            session.snapshot(), distributions, space
        )
        np.testing.assert_array_equal(
            restored.space.probabilities, session.space.probabilities
        )
        assert restored.answers[0].accuracy == pytest.approx(0.8)

    def test_snapshot_of_fresh_session_restores_to_initial_space(self):
        distributions, space = build_instance()
        session = InteractiveSession(distributions, 4, space)
        restored = InteractiveSession.restore(
            session.snapshot(), distributions, space
        )
        assert restored.space is space
        assert restored.questions_asked == 0
