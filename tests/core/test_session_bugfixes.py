"""Regression tests for session-loop correctness fixes.

Covers three bugs found while auditing the session loop:

* online livelock — with transitive inference on, inferred answers consume
  no budget, so a step that neither charges budget nor changes the space
  must terminate the loop instead of repeating forever;
* contradiction accounting — contradictory reliable answers used to be
  silently swallowed; they are now counted and surfaced on
  :class:`SessionResult`;
* trajectory bookkeeping — only *charged* answers record a ``D(ω_r, ·)``
  point, so ``len(trajectory) == questions_asked + 1`` always holds.
"""

from typing import Sequence

import numpy as np

from repro.api import POLICIES
from repro.core.policies.base import OfflinePolicy, OnlinePolicy
from repro.core.policies.baselines import RandomPolicy
from repro.core.session import UncertaintyReductionSession
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import CrowdStats, SimulatedCrowd
from repro.distributions.uniform import Uniform
from repro.questions.model import Answer, Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace
from repro.uncertainty.entropy import EntropyMeasure


class FixedQuestionPolicy(OnlinePolicy):
    """Always asks the same question — livelock bait under inference."""

    name = "fixed"

    def __init__(self, question: Question, max_calls: int = 50) -> None:
        self.question = question
        self.calls = 0
        self.max_calls = max_calls

    def next_question(self, space, candidates, remaining_budget, evaluator, rng):
        self.calls += 1
        assert self.calls <= self.max_calls, (
            "online session livelocked: the same inferred, non-pruning "
            "question was selected over and over"
        )
        return self.question


class ScriptedBatchPolicy(OfflinePolicy):
    """Returns a fixed batch regardless of candidates."""

    name = "scripted"

    def __init__(self, batch: Sequence[Question]) -> None:
        self.batch = list(batch)

    def select(self, space, candidates, budget, evaluator, rng):
        return list(self.batch[:budget])


class ScriptedCrowd:
    """Minimal crowd stub replaying a fixed list of reliable verdicts."""

    is_reliable = True

    def __init__(self, truth: GroundTruth, verdicts: Sequence[bool]) -> None:
        self.truth = truth
        self.stats = CrowdStats()
        self._verdicts = list(verdicts)

    def ask(self, question: Question) -> Answer:
        holds = self._verdicts.pop(0)
        self.stats.questions_posted += 1
        self.stats.assignments += 1
        return Answer(question, holds, accuracy=1.0)


# ----------------------------------------------------------------------
# Livelock
# ----------------------------------------------------------------------


def test_online_session_terminates_when_inference_makes_no_progress():
    distributions = [Uniform(0.0, 1.0), Uniform(0.0, 1.0), Uniform(0.0, 1.0)]
    crowd = SimulatedCrowd(
        GroundTruth([0.9, 0.5, 0.1]), worker_accuracy=1.0, rng=3
    )
    session = UncertaintyReductionSession(
        distributions,
        k=2,
        crowd=crowd,
        rng=3,
        use_transitive_inference=True,
    )
    policy = FixedQuestionPolicy(Question(0, 1), max_calls=100)
    result = session.run(policy, budget=5)
    # One charged answer; the second iteration is inferred and non-pruning
    # (marking the question fruitless); every further re-selection is
    # skipped until the bounded-skip guard ends the session — without
    # charging budget or spinning forever.
    assert result.questions_asked == 1
    assert 3 <= policy.calls <= 50
    assert result.inferred_answers >= 1


def test_online_session_terminates_when_cycling_fruitless_questions():
    """A (pseudo-)stochastic policy alternating no-op questions must also
    terminate — the guard trips once a known-fruitless question repeats."""

    class Alternating(OnlinePolicy):
        name = "alternating"

        def __init__(self) -> None:
            self.calls = 0

        def next_question(self, space, candidates, remaining, evaluator, rng):
            self.calls += 1
            assert self.calls <= 200, "livelock: fruitless cycle never broke"
            return [Question(0, 1), Question(1, 2)][self.calls % 2]

    distributions = [Uniform(0.0, 1.0), Uniform(0.0, 1.0), Uniform(0.0, 1.0)]
    crowd = SimulatedCrowd(
        GroundTruth([0.9, 0.5, 0.1]), worker_accuracy=1.0, rng=3
    )
    session = UncertaintyReductionSession(
        distributions, k=2, crowd=crowd, rng=3, use_transitive_inference=True
    )
    result = session.run(Alternating(), budget=10)
    assert result.questions_asked <= 2


# ----------------------------------------------------------------------
# Contradiction accounting
# ----------------------------------------------------------------------


def test_contradictory_reliable_answers_are_counted():
    distributions = [Uniform(0.0, 1.0), Uniform(0.0, 1.0)]
    truth = GroundTruth([1.0, 0.0])
    question = Question(0, 1)
    crowd = ScriptedCrowd(truth, [True, False])  # second answer contradicts
    session = UncertaintyReductionSession(
        distributions, k=2, crowd=crowd, rng=0
    )
    result = session.run(ScriptedBatchPolicy([question, question]), budget=2)
    assert result.contradictions == 1
    assert result.questions_asked == 2
    # The contradictory answer left the space unchanged rather than empty.
    assert result.orderings_final == 1

    # Counts are per-run deltas, not lifetime totals of the evaluator.
    crowd2 = ScriptedCrowd(truth, [True, True])
    session.crowd = crowd2
    clean = session.run(ScriptedBatchPolicy([question, question]), budget=2)
    assert clean.contradictions == 0


def test_incr_survives_and_counts_contradictions():
    """incr with a noisy-but-assumed-reliable crowd must neither crash in
    the answer-replay loop (atomic prune_with_answer) nor report the run
    as clean (regression: contradictions were swallowed with a bare pass
    and a half-pruned zero-mass tree crashed a later renormalize)."""
    found = 0
    for seed in range(6):
        scores = [
            Uniform(c, c + 0.35)
            for c in np.random.default_rng(seed).random(8)
        ]
        crowd = SimulatedCrowd(
            GroundTruth.sample(scores, rng=seed),
            worker_accuracy=0.55,
            assumed_accuracy=1.0,
            rng=seed,
        )
        session = UncertaintyReductionSession(scores, k=4, crowd=crowd, rng=seed)
        result = session.run(POLICIES.create("incr"), budget=15)
        # Replays re-apply every answer per extension level; each answer
        # must still be counted at most once.
        assert result.contradictions <= result.questions_asked
        found += result.contradictions
    assert found > 0  # seed 2 contradicts; the loop must not crash


def test_apply_answer_counts_contradictions_on_evaluator():
    evaluator = ResidualEvaluator(EntropyMeasure())
    space = OrderingSpace.from_orderings([[0, 1]], [1.0], 4)
    assert evaluator.contradictions == 0
    updated = evaluator.apply_answer(
        space, Question(0, 1), holds=False, accuracy=1.0
    )
    assert updated is space
    assert evaluator.contradictions == 1


# ----------------------------------------------------------------------
# Trajectory bookkeeping
# ----------------------------------------------------------------------


def test_trajectory_records_only_charged_answers():
    # (0, 1) genuinely uncertain; both are disjoint from tuple 2, so two of
    # the three candidate pairs are answered for free by support seeding.
    distributions = [
        Uniform(0.80, 1.00),
        Uniform(0.85, 1.05),
        Uniform(0.50, 0.60),
        Uniform(0.00, 0.10),
        Uniform(0.15, 0.25),
    ]
    crowd = SimulatedCrowd(
        GroundTruth([0.9, 0.95, 0.55, 0.05, 0.2]), worker_accuracy=1.0, rng=5
    )
    session = UncertaintyReductionSession(
        distributions,
        k=3,
        crowd=crowd,
        rng=5,
        track_trajectory=True,
        use_transitive_inference=True,
    )
    result = session.run(RandomPolicy(), budget=3)
    assert result.inferred_answers == 2
    assert result.questions_asked == 1
    assert result.trajectory is not None
    assert len(result.trajectory) == result.questions_asked + 1


def test_trajectory_invariant_without_inference():
    distributions = [Uniform(c, c + 0.4) for c in (0.0, 0.1, 0.2, 0.3)]
    crowd = SimulatedCrowd(
        GroundTruth([0.2, 0.35, 0.4, 0.6]), worker_accuracy=1.0, rng=9
    )
    session = UncertaintyReductionSession(
        distributions, k=2, crowd=crowd, rng=9, track_trajectory=True
    )
    result = session.run(POLICIES.create("T1-on"), budget=4)
    assert result.trajectory is not None
    assert len(result.trajectory) == result.questions_asked + 1
