"""Tests for the uncertainty-reduction session engine."""

import numpy as np
import pytest

from repro.api import POLICIES
from repro.core import (
    IncrementalAlgorithm,
    UncertaintyReductionSession,
)
from repro.crowd import GroundTruth, SimulatedCrowd
from repro.distributions import Uniform
from repro.tpo import GridBuilder


@pytest.fixture
def dists():
    rng = np.random.default_rng(3)
    return [Uniform(c, c + 0.3) for c in rng.random(8)]


@pytest.fixture
def truth(dists):
    return GroundTruth.sample(dists, rng=11)


def make_session(dists, truth, accuracy=1.0, seed=0, **kwargs):
    crowd = SimulatedCrowd(
        truth, worker_accuracy=accuracy, rng=np.random.default_rng(seed)
    )
    return UncertaintyReductionSession(
        dists,
        4,
        crowd,
        builder=GridBuilder(resolution=500),
        rng=np.random.default_rng(seed + 1),
        **kwargs,
    )


class TestReliableRuns:
    @pytest.mark.parametrize(
        "policy_name", ["random", "naive", "TB-off", "C-off", "T1-on"]
    )
    def test_policies_reduce_uncertainty(self, dists, truth, policy_name):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create(policy_name), 8)
        assert result.final_uncertainty <= result.initial_uncertainty + 1e-9
        assert result.orderings_final <= result.orderings_initial
        assert result.questions_asked <= 8
        assert 0.0 <= result.distance_to_truth <= 1.0

    def test_online_early_termination(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create("T1-on"), 100)
        # Enough budget resolves everything; T1-on must stop early.
        assert result.final_space.is_certain
        assert result.questions_asked < 100

    def test_resolved_space_contains_truth_prefix(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create("T1-on"), 100)
        np.testing.assert_array_equal(
            result.final_space.paths[0], truth.top_k(4)
        )
        assert result.distance_to_truth == pytest.approx(0.0, abs=1e-12)

    def test_zero_budget_returns_initial_state(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create("T1-on"), 0)
        assert result.questions_asked == 0
        assert result.final_uncertainty == pytest.approx(
            result.initial_uncertainty
        )

    def test_negative_budget_rejected(self, dists, truth):
        session = make_session(dists, truth)
        with pytest.raises(ValueError):
            session.run(POLICIES.create("T1-on"), -1)

    def test_trajectory_tracking(self, dists, truth):
        session = make_session(dists, truth, track_trajectory=True)
        result = session.run(POLICIES.create("TB-off"), 5)
        assert result.trajectory is not None
        assert len(result.trajectory) == result.questions_asked + 1
        assert result.trajectory[0] == pytest.approx(result.initial_distance)
        assert result.trajectory[-1] == pytest.approx(
            result.distance_to_truth
        )

    def test_timings_are_recorded(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create("T1-on"), 5)
        assert "build" in result.timings
        assert "select" in result.timings
        assert result.cpu_seconds >= 0

    def test_summary_is_readable(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(POLICIES.create("naive"), 3)
        text = result.summary()
        assert "naive" in text
        assert "D=" in text


class TestNoisyRuns:
    def test_noisy_answers_never_prune(self, dists, truth):
        session = make_session(dists, truth, accuracy=0.8)
        result = session.run(POLICIES.create("T1-on"), 6)
        # Reweighting keeps the support intact.
        assert result.orderings_final == result.orderings_initial
        assert result.questions_asked == 6

    def test_noisy_run_still_helps_on_average(self, dists, truth):
        distances = []
        for seed in range(5):
            session = make_session(dists, truth, accuracy=0.85, seed=seed)
            result = session.run(POLICIES.create("T1-on"), 10)
            distances.append(
                result.distance_to_truth - result.initial_distance
            )
        assert np.mean(distances) < 0  # on average the distance drops

    def test_answers_carry_assumed_accuracy(self, dists, truth):
        session = make_session(dists, truth, accuracy=0.8)
        result = session.run(POLICIES.create("T1-on"), 3)
        for answer in result.answers:
            assert answer.accuracy == pytest.approx(0.8)


class TestIncrementalSession:
    def test_incr_runs_and_completes_tree(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(IncrementalAlgorithm(round_size=3), 8)
        assert result.policy == "incr"
        assert result.final_space.depth == 4
        assert result.questions_asked <= 8
        assert 0.0 <= result.distance_to_truth <= 1.0

    def test_incr_round_size_one(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(IncrementalAlgorithm(round_size=1), 6)
        assert result.questions_asked <= 6

    def test_incr_with_noisy_crowd(self, dists, truth):
        session = make_session(dists, truth, accuracy=0.8)
        result = session.run(IncrementalAlgorithm(round_size=2), 6)
        assert result.final_space.depth == 4
        assert result.final_space.probabilities.sum() == pytest.approx(1.0)

    def test_incr_initial_metrics_are_nan(self, dists, truth):
        session = make_session(dists, truth)
        result = session.run(IncrementalAlgorithm(round_size=2), 4)
        assert np.isnan(result.initial_uncertainty)
        assert np.isnan(result.initial_distance)

    def test_incr_validation(self):
        with pytest.raises(ValueError):
            IncrementalAlgorithm(round_size=0)

    def test_incr_cheaper_than_full_build(self, dists, truth):
        full = make_session(dists, truth)
        full_result = full.run(POLICIES.create("T1-on"), 6)
        lazy = make_session(dists, truth)
        lazy_result = lazy.run(IncrementalAlgorithm(round_size=3), 6)
        assert lazy_result.timings.get("build", 0.0) <= (
            full_result.timings.get("build", 0.0) * 3 + 0.5
        )


class TestDeterminism:
    def test_same_seed_same_outcome(self, dists, truth):
        first = make_session(dists, truth, seed=5).run(POLICIES.create("naive"), 5)
        second = make_session(dists, truth, seed=5).run(POLICIES.create("naive"), 5)
        assert [a.question for a in first.answers] == [
            a.question for a in second.answers
        ]
        assert first.distance_to_truth == pytest.approx(
            second.distance_to_truth
        )

    def test_unknown_policy_type_rejected(self, dists, truth):
        class Strange:
            name = "strange"

        session = make_session(dists, truth)
        with pytest.raises(TypeError):
            session.run(Strange(), 3)
