"""EVAL_report assembly: run_eval, persistence, baseline comparison."""

import copy

import pytest

from repro.evals.report import (
    DEFAULT_SUITES,
    compare_to_baseline,
    load_report,
    run_eval,
    summarize,
    write_report,
)


@pytest.fixture(scope="module")
def golden_report():
    return run_eval(suites=["golden"], fast=True)


def test_default_suites_cover_the_harness():
    assert DEFAULT_SUITES == ("calibration", "regret", "golden")


def test_run_eval_golden_suite_passes(golden_report):
    assert golden_report["passed"]
    assert golden_report["fast"]
    assert list(golden_report["suites"]) == ["golden"]
    suite = golden_report["suites"]["golden"]
    assert suite["passed"]
    assert suite["checks"]


def test_report_is_provenance_stamped(golden_report):
    assert golden_report["format"] == 1
    assert golden_report["git_sha"]
    assert golden_report["date"]


def test_unknown_suite_rejected():
    with pytest.raises(ValueError):
        run_eval(suites=["nope"], fast=True)


def test_write_and_load_round_trip(tmp_path, golden_report):
    target = tmp_path / "EVAL_report.json"
    write_report(golden_report, target)
    assert load_report(target) == golden_report


def test_compare_to_baseline_flags_pass_to_fail_flips(golden_report):
    baseline = copy.deepcopy(golden_report)
    regressed = copy.deepcopy(golden_report)
    regressed["suites"]["golden"]["passed"] = False
    regressed["suites"]["golden"]["checks"][0]["passed"] = False
    regressed["passed"] = False

    assert compare_to_baseline(golden_report, baseline) == []
    regressions = compare_to_baseline(regressed, baseline)
    assert regressions
    assert any("golden" in line for line in regressions)


def test_missing_suite_counts_as_regression(golden_report):
    baseline = copy.deepcopy(golden_report)
    current = copy.deepcopy(golden_report)
    del current["suites"]["golden"]
    regressions = compare_to_baseline(current, baseline)
    assert any("not run" in line for line in regressions)


def test_already_failing_baseline_is_not_a_regression(golden_report):
    baseline = copy.deepcopy(golden_report)
    baseline["suites"]["golden"]["passed"] = False
    current = copy.deepcopy(golden_report)
    current["suites"]["golden"]["passed"] = False
    assert compare_to_baseline(current, baseline) == []


def test_summarize_renders_every_suite_and_check(golden_report):
    text = summarize(golden_report)
    assert "golden" in text
    assert "overall" in text
    for chk in golden_report["suites"]["golden"]["checks"]:
        assert chk["name"] in text
