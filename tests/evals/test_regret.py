"""Regret suite: trajectory math, oracle cells, beam deltas, scoring."""

import pytest

from repro.evals.regret import (
    RegretEval,
    cumulative_regret,
    run_beam_delta_cell,
    run_regret_cell,
)


def test_cumulative_regret_pads_shorter_trajectories():
    # The policy settled after one question; the oracle used three.
    policy = [0.4, 0.1]
    oracle = [0.4, 0.2, 0.1, 0.0]
    assert cumulative_regret(policy, oracle) == pytest.approx(
        (0.4 - 0.4) + (0.1 - 0.2) + (0.1 - 0.1) + (0.1 - 0.0)
    )


def test_cumulative_regret_of_identical_trajectories_is_zero():
    assert cumulative_regret([0.3, 0.1, 0.0], [0.3, 0.1, 0.0]) == 0.0


def test_empty_trajectory_rejected():
    with pytest.raises(ValueError):
        cumulative_regret([], [0.1])


def test_regret_cell_reports_policy_and_oracle():
    row = run_regret_cell(
        policy="T1-on",
        measure="H",
        accuracy=1.0,
        n=7,
        k=3,
        workload="jittered",
        seed=2,
        budget=3,
        resolution=256,
    )
    assert row["kind"] == "regret"
    assert row["oracle_distance"] >= 0.0
    assert row["cumulative_regret"] == pytest.approx(
        row["cumulative_regret"]
    )  # finite
    assert row["questions_asked"] <= 3


def test_beam_delta_cell_compares_engines():
    row = run_beam_delta_cell(
        policy="T1-on",
        measure="H",
        accuracy=1.0,
        n=10,
        k=4,
        workload="jittered",
        seed=2,
        budget=4,
        beam_epsilon=0.02,
        resolution=256,
    )
    assert row["kind"] == "beam_delta"
    assert abs(row["delta_distance"]) <= 1.0
    assert row["beam_epsilon"] == 0.02


def test_fast_grid_has_oracle_and_beam_cells():
    grid = RegretEval().grid(fast=True)
    runners = {cell.runner for cell in grid}
    assert runners == {
        "repro.evals.regret:run_regret_cell",
        "repro.evals.regret:run_beam_delta_cell",
    }


def test_score_gates_informed_policies_only():
    rows = [
        {
            "kind": "regret",
            "policy": "T1-on",
            "cumulative_regret": 0.05,
            "final_regret": 0.01,
            "oracle_distance": 0.1,
        },
        {
            "kind": "regret",
            "policy": "random",
            "cumulative_regret": 5.0,  # terrible, but never gated
            "final_regret": 2.0,
            "oracle_distance": 0.1,
        },
        {
            "kind": "beam_delta",
            "beam_epsilon": 0.02,
            "delta_distance": 0.01,
        },
    ]
    result = RegretEval().score(rows)
    assert result["passed"]
    assert "random" in result["metrics"]["cumulative_regret_per_policy"]


def test_score_fails_on_informed_regret():
    rows = [
        {
            "kind": "regret",
            "policy": "T1-on",
            "cumulative_regret": 10.0,
            "final_regret": 0.5,
            "oracle_distance": 0.1,
        }
    ]
    result = RegretEval().score(rows)
    assert not result["passed"]
