"""Service event-log leg of golden replay: create/submit/resume parity."""

import copy

import pytest

from repro.evals.golden import load_dataset
from repro.evals.service_replay import run_golden_service_cell


@pytest.fixture(scope="module")
def dataset():
    return load_dataset()


def test_every_committed_case_survives_the_service_path(dataset):
    for case in dataset["cases"]:
        row = run_golden_service_cell(case=case)
        assert row["passed"], (case["label"], row["mismatches"])
        assert row["path"] == "service"


def test_service_detects_tampered_final_state(dataset):
    case = copy.deepcopy(dataset["cases"][0])
    case["expected"]["orderings_final"] += 1
    row = run_golden_service_cell(case=case)
    assert not row["passed"]
    assert any("orderings_final" in m for m in row["mismatches"])


def test_service_verifies_question_sequence_for_t1_on(dataset):
    t1_cases = [c for c in dataset["cases"] if c["verify_questions"]]
    assert t1_cases, "dataset must contain a T1-on recording"
    case = copy.deepcopy(t1_cases[0])
    # Swap the first two recorded answers: the min-residual service
    # session must offer the *recorded* first question, so the swapped
    # order is flagged even though the final state may coincide.
    if len(case["expected"]["answers"]) >= 2:
        answers = case["expected"]["answers"]
        answers[0], answers[1] = answers[1], answers[0]
        row = run_golden_service_cell(case=case)
        assert any("question[0]" in m for m in row["mismatches"])
