"""Golden dataset: authentication, bit-identical replay, drift detection."""

import copy
import json

import pytest

from repro.evals.golden import (
    GoldenEval,
    dataset_path,
    load_dataset,
    record_case,
    run_golden_api_cell,
)
from repro.evals.specs import EvalSpec


@pytest.fixture(scope="module")
def dataset():
    return load_dataset()


def test_committed_dataset_loads_and_authenticates(dataset):
    assert dataset["version"] == 1
    assert len(dataset["cases"]) >= 4
    labels = [case["label"] for case in dataset["cases"]]
    assert len(set(labels)) == len(labels)


def test_dataset_spans_measures_policies_and_beam(dataset):
    sessions = [
        EvalSpec.from_dict(case["eval"]).session
        for case in dataset["cases"]
    ]
    assert len({spec.measure.name for spec in sessions}) >= 3
    assert len({spec.policy.name for spec in sessions}) >= 2
    assert any(
        spec.engine_spec.params.get("beam_epsilon") for spec in sessions
    )


def test_tampered_spec_fails_authentication(tmp_path, dataset):
    payload = copy.deepcopy(dataset)
    payload["cases"][0]["eval"]["session"]["instance"]["seed"] += 1
    target = tmp_path / "golden.json"
    target.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="key drift"):
        load_dataset(target)


def test_every_committed_case_replays_bit_identically(dataset):
    for case in dataset["cases"]:
        row = run_golden_api_cell(case=case)
        assert row["passed"], row["mismatches"]


def test_tampered_expectation_is_caught(dataset):
    case = copy.deepcopy(dataset["cases"][0])
    case["expected"]["final_uncertainty"] += 1e-9
    row = run_golden_api_cell(case=case)
    assert not row["passed"]
    assert any("final_uncertainty" in m for m in row["mismatches"])


def test_recording_is_reproducible(dataset):
    case = dataset["cases"][0]
    spec = EvalSpec.from_dict(case["eval"]).session
    fresh = record_case(spec)
    assert fresh["key"] == case["key"]
    assert fresh["expected"] == case["expected"]


def test_dataset_file_is_committed():
    assert dataset_path().is_file()


def test_grid_runs_every_case_through_both_paths(dataset):
    grid = GoldenEval().grid(fast=True)
    assert len(grid) == 2 * len(dataset["cases"])
    runners = {cell.runner for cell in grid}
    assert runners == {
        "repro.evals.golden:run_golden_api_cell",
        "repro.evals.service_replay:run_golden_service_cell",
    }


def test_score_collects_failures():
    rows = [
        {"path": "api", "label": "a", "key": "k1", "passed": True,
         "mismatches": []},
        {"path": "service", "label": "a", "key": "k1", "passed": False,
         "mismatches": ["final_uncertainty: expected 1, got 2"]},
    ]
    result = GoldenEval().score(rows)
    assert not result["passed"]
    assert result["metrics"]["failed"][0]["path"] == "service"
