"""EvalSpec: canonical round-trip, content keys, validation."""

import pytest

from repro.api.specs import InstanceSpec, SessionSpec
from repro.evals.specs import EvalSpec


def _spec(**overrides):
    session = SessionSpec(instance=InstanceSpec(n=6, k=3, seed=5))
    defaults = dict(suite="golden", session=session, params={"bins": 10})
    defaults.update(overrides)
    return EvalSpec(**defaults)


def test_round_trip_is_exact():
    spec = _spec()
    clone = EvalSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.canonical_json() == spec.canonical_json()
    assert clone.content_key() == spec.content_key()


def test_params_participate_in_content_key():
    assert _spec().content_key() != _spec(params={"bins": 20}).content_key()
    assert _spec().content_key() != _spec(suite="calibration").content_key()


def test_content_key_is_stable_across_param_order():
    a = _spec(params={"a": 1, "b": 2})
    b = _spec(params={"b": 2, "a": 1})
    assert a.content_key() == b.content_key()


def test_empty_suite_rejected():
    with pytest.raises(ValueError):
        _spec(suite="")


def test_session_must_be_a_spec():
    with pytest.raises(TypeError):
        _spec(session={"instance": {"n": 6, "k": 3}})


def test_unknown_payload_fields_rejected():
    payload = _spec().to_dict()
    payload["extra"] = 1
    with pytest.raises(ValueError):
        EvalSpec.from_dict(payload)


def test_non_mapping_payload_rejected():
    with pytest.raises(ValueError):
        EvalSpec.from_dict([1, 2, 3])
