"""Calibration suite: metric helpers, the observer hook, cell runners."""

import pytest

from repro.evals.calibration import (
    CalibrationEval,
    expected_calibration_error,
    fractional_reductions,
    interval_coverage,
    merge_bins,
    reliability_bins,
    run_calibration_cell,
)
from repro.evals.calibration import CalibrationRecord


def _cell(**overrides):
    params = dict(
        measure="H",
        crowd_model="perfect",
        accuracy=1.0,
        n=8,
        k=3,
        workload="jittered",
        seed=3,
        budget=5,
        engine_params={"resolution": 256},
    )
    params.update(overrides)
    return run_calibration_cell(**params)


# -- metric helpers ----------------------------------------------------


def test_perfectly_calibrated_predictions_have_zero_ece():
    predicted = [0.05, 0.25, 0.55, 0.95]
    bins = reliability_bins(predicted, predicted, bins=10)
    assert expected_calibration_error(bins) == 0.0


def test_systematic_overprediction_shows_in_ece():
    predicted = [0.9, 0.95, 0.85]
    realized = [0.1, 0.15, 0.05]
    bins = reliability_bins(predicted, realized, bins=10)
    assert expected_calibration_error(bins) == pytest.approx(0.8, abs=0.05)


def test_empty_bins_give_zero_ece():
    assert expected_calibration_error(reliability_bins([], [], bins=5)) == 0.0


def test_merge_bins_pools_counts_and_sums():
    a = reliability_bins([0.1], [0.2], bins=4)
    b = reliability_bins([0.1, 0.9], [0.0, 1.0], bins=4)
    merged = merge_bins([a, b])
    assert sum(row[0] for row in merged) == 3
    with pytest.raises(ValueError):
        merge_bins([a, reliability_bins([0.5], [0.5], bins=8)])


def test_fractional_reductions_skip_certain_states_and_clip():
    records = [
        CalibrationRecord(0.0, 0.0, 0.0, (0.0, 0.0), (0.0, 0.0)),
        CalibrationRecord(2.0, 2.2, 1.0, (2.0, 2.0), (2.2, 2.2)),
    ]
    predicted, realized = fractional_reductions(records)
    assert predicted == [0.5]
    assert realized == [0.0]  # realized increase clips to zero


def test_interval_coverage_counts_containment():
    intervals = [(0.0, 1.0), (2.0, 3.0), (5.0, 6.0)]
    assert interval_coverage(intervals, [0.5, 2.5, 7.0]) == pytest.approx(
        2 / 3
    )
    assert interval_coverage([], []) == 1.0


def test_interval_coverage_tolerates_float_noise():
    assert interval_coverage([(1.0, 1.0)], [1.0 + 1e-12]) == 1.0


# -- the instrumented cell --------------------------------------------


def test_exact_cell_coverage_is_total():
    row = _cell()
    assert row["coverage"] == 1.0
    assert row["coverage_states"] == row["answers"] + 1
    assert not row["beamed"]
    assert row["answers"] > 0


def test_exact_cell_is_well_calibrated():
    row = _cell()
    assert row["ece"] <= 0.15
    assert 0.0 <= row["mean_predicted"] <= 1.0
    assert 0.0 <= row["mean_realized"] <= 1.0


def test_noisy_cell_reweights_without_contradictions():
    row = _cell(crowd_model="noisy", accuracy=0.8)
    assert row["contradictions"] == 0
    assert row["answers"] > 0


def test_beam_cell_realizes_exact_values_for_coverage():
    row = _cell(
        n=11,
        k=4,
        budget=6,
        engine_params={"resolution": 256, "beam_epsilon": 0.02},
    )
    assert row["beamed"]
    assert row["coverage"] == 1.0


def test_cell_rows_are_json_round_trippable():
    import json

    row = _cell()
    assert json.loads(json.dumps(row)) == row


# -- the suite ---------------------------------------------------------


def test_fast_grid_covers_all_measures_and_beams():
    grid = CalibrationEval().grid(fast=True)
    measures = {cell.params["measure"] for cell in grid}
    assert measures == {"H", "Hw", "ORA", "MPO"}
    assert any(
        cell.params["engine_params"].get("beam_epsilon") for cell in grid
    )


def test_score_gates_on_synthetic_rows():
    good = {
        "measure": "H",
        "beamed": False,
        "answers": 2,
        "contradictions": 0,
        "bins": reliability_bins([0.5, 0.5], [0.5, 0.5], bins=10),
        "coverage": 1.0,
    }
    bad_coverage = dict(good, coverage=0.5)
    passing = CalibrationEval().score([good])
    failing = CalibrationEval().score([good, bad_coverage])
    assert passing["passed"]
    assert not failing["passed"]
    names = {c["name"]: c for c in failing["checks"]}
    assert not names["coverage_exact"]["passed"]


def test_score_excludes_forked_beam_rows_from_the_gate():
    base = {
        "measure": "H",
        "beamed": True,
        "answers": 2,
        "contradictions": 1,  # trajectories forked: not gated
        "bins": reliability_bins([0.5], [0.5], bins=10),
        "coverage": 0.0,
    }
    result = CalibrationEval().score([base])
    names = {c["name"]: c for c in result["checks"]}
    assert names["coverage_beam"]["passed"]
    assert result["metrics"]["beam_rows_forked"] == 1
