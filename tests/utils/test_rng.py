"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    derive_seed,
    ensure_rng,
    spawn_rngs,
)


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).random(4)
    b = ensure_rng(7).random(4)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough():
    generator = np.random.default_rng(1)
    assert ensure_rng(generator) is generator


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_are_independent_and_reproducible():
    streams_a = spawn_rngs(3, 4)
    streams_b = spawn_rngs(3, 4)
    assert len(streams_a) == 4
    for left, right in zip(streams_a, streams_b):
        assert np.allclose(left.random(3), right.random(3))
    # Distinct children differ.
    fresh = spawn_rngs(3, 2)
    assert not np.allclose(fresh[0].random(5), fresh[1].random(5))


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)


def test_derive_seed_is_non_negative():
    for labels in [("x",), ("y", 3), (0,)]:
        assert derive_seed(123, *labels) >= 0


def test_choice_without_replacement_subset():
    rng = np.random.default_rng(0)
    picked = choice_without_replacement(rng, range(10), 4)
    assert len(picked) == 4
    assert len(set(picked)) == 4
    assert all(0 <= x < 10 for x in picked)


def test_choice_without_replacement_exhausts_pool():
    rng = np.random.default_rng(0)
    picked = choice_without_replacement(rng, [1, 2, 3], 10)
    assert sorted(picked) == [1, 2, 3]
