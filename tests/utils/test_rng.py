"""Tests for RNG plumbing."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.utils.rng import (
    choice_without_replacement,
    derive_seed,
    ensure_rng,
    spawn_rngs,
)


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(7).random(4)
    b = ensure_rng(7).random(4)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough():
    generator = np.random.default_rng(1)
    assert ensure_rng(generator) is generator


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_rngs_are_independent_and_reproducible():
    streams_a = spawn_rngs(3, 4)
    streams_b = spawn_rngs(3, 4)
    assert len(streams_a) == 4
    for left, right in zip(streams_a, streams_b, strict=True):
        assert np.allclose(left.random(3), right.random(3))
    # Distinct children differ.
    fresh = spawn_rngs(3, 2)
    assert not np.allclose(fresh[0].random(5), fresh[1].random(5))


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)


def test_derive_seed_is_non_negative():
    for labels in [("x",), ("y", 3), (0,)]:
        assert derive_seed(123, *labels) >= 0


def test_derive_seed_is_stable_across_processes():
    """String labels must not go through the salted builtin ``hash``.

    The grid runner fans cells out to pool workers; if the derivation
    depended on PYTHONHASHSEED, a worker would see different streams than
    the serial loop and fan-out results would be irreproducible.
    """
    expected = derive_seed(2016, "crowd", 0, "T1-on", 5)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    for hash_seed in ("1", "2345"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src_dir)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.utils.rng import derive_seed;"
                "print(derive_seed(2016, 'crowd', 0, 'T1-on', 5))",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert int(out.stdout.strip()) == expected


def test_choice_without_replacement_subset():
    rng = np.random.default_rng(0)
    picked = choice_without_replacement(rng, range(10), 4)
    assert len(picked) == 4
    assert len(set(picked)) == 4
    assert all(0 <= x < 10 for x in picked)


def test_choice_without_replacement_exhausts_pool():
    rng = np.random.default_rng(0)
    picked = choice_without_replacement(rng, [1, 2, 3], 10)
    assert sorted(picked) == [1, 2, 3]
