"""Tests for argument validators."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_index,
    check_positive,
    check_probability_vector,
)


def test_check_positive_accepts_and_rejects():
    assert check_positive("x", 1.5) == 1.5
    with pytest.raises(ValueError, match="x"):
        check_positive("x", 0)
    with pytest.raises(ValueError):
        check_positive("x", -1)


def test_check_positive_allow_zero():
    assert check_positive("x", 0, allow_zero=True) == 0
    with pytest.raises(ValueError):
        check_positive("x", -0.1, allow_zero=True)


def test_check_fraction_bounds():
    assert check_fraction("p", 0.0) == 0.0
    assert check_fraction("p", 1.0) == 1.0
    with pytest.raises(ValueError):
        check_fraction("p", 1.01)
    with pytest.raises(ValueError):
        check_fraction("p", -0.01)


def test_check_probability_vector_valid():
    out = check_probability_vector("p", [0.2, 0.3, 0.5])
    assert np.allclose(out.sum(), 1.0)


def test_check_probability_vector_rejects_bad_inputs():
    with pytest.raises(ValueError):
        check_probability_vector("p", [0.5, 0.6])
    with pytest.raises(ValueError):
        check_probability_vector("p", [-0.5, 1.5])
    with pytest.raises(ValueError):
        check_probability_vector("p", [])
    with pytest.raises(ValueError):
        check_probability_vector("p", [[0.5], [0.5]])


def test_check_index():
    assert check_index("i", 2, 5) == 2
    with pytest.raises(ValueError):
        check_index("i", 5, 5)
    with pytest.raises(ValueError):
        check_index("i", -1, 5)
