"""Tests for the stopwatch utilities."""

from repro.utils.timing import Stopwatch, timed


def test_stopwatch_accumulates_spans():
    watch = Stopwatch()
    with watch.span("work"):
        sum(range(10000))
    with watch.span("work"):
        sum(range(10000))
    assert watch.counts["work"] == 2
    assert watch.total("work") >= 0.0


def test_stopwatch_unknown_span_is_zero():
    assert Stopwatch().total("nothing") == 0.0


def test_stopwatch_grand_total_and_reset():
    watch = Stopwatch()
    with watch.span("a"):
        pass
    with watch.span("b"):
        pass
    assert watch.grand_total() == watch.total("a") + watch.total("b")
    watch.reset()
    assert watch.grand_total() == 0.0
    assert watch.counts == {}


def test_stopwatch_records_even_on_exception():
    watch = Stopwatch()
    try:
        with watch.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert watch.counts["boom"] == 1


def test_timed_returns_result_and_duration():
    result, seconds = timed(lambda x: x * 2, 21)
    assert result == 42
    assert seconds >= 0.0
