"""Integration tests across all substrates.

These are the paper's claims as executable statements on small instances:
pruning converges to the real ordering, proposed policies beat baselines,
noisy crowds still help, and all engines tell the same story.
"""

import numpy as np
import pytest

from repro import (
    GroundTruth,
    SimulatedCrowd,
    UncertaintyReductionSession,
    Uniform,
)
from repro.api import MEASURES, POLICIES
from repro.tpo import ExactBuilder, GridBuilder, MonteCarloBuilder


def build_instance(n=10, k=5, width=0.25, seed=0):
    rng = np.random.default_rng(seed)
    dists = [Uniform(c, c + width) for c in rng.random(n)]
    truth = GroundTruth.sample(dists, rng=rng)
    return dists, truth


def run(dists, truth, policy_name, budget, k=5, accuracy=1.0, seed=1, **kw):
    crowd = SimulatedCrowd(
        truth, worker_accuracy=accuracy, rng=np.random.default_rng(seed)
    )
    session = UncertaintyReductionSession(
        dists, k, crowd,
        builder=GridBuilder(resolution=500),
        rng=np.random.default_rng(seed + 1),
    )
    return session.run(POLICIES.create(policy_name, **kw), budget)


class TestConvergence:
    def test_unbounded_budget_always_finds_truth(self):
        for seed in range(4):
            dists, truth = build_instance(seed=seed)
            result = run(dists, truth, "T1-on", budget=200, seed=seed)
            assert result.final_space.is_certain
            np.testing.assert_array_equal(
                result.final_space.paths[0], truth.top_k(5)
            )

    def test_more_budget_is_no_worse_for_t1(self):
        dists, truth = build_instance(seed=7)
        distances = [
            run(dists, truth, "T1-on", budget=b, seed=3).distance_to_truth
            for b in (0, 4, 8, 16)
        ]
        # Reliable answers only remove wrong orderings: monotone decay.
        for earlier, later in zip(distances, distances[1:], strict=False):
            assert later <= earlier + 1e-9


class TestPaperOrdering:
    def test_proposed_beats_random_on_average(self):
        gaps = []
        for seed in range(5):
            dists, truth = build_instance(seed=seed)
            smart = run(dists, truth, "T1-on", budget=6, seed=seed)
            dumb = run(dists, truth, "random", budget=6, seed=seed)
            gaps.append(
                dumb.distance_to_truth - smart.distance_to_truth
            )
        assert np.mean(gaps) > 0

    def test_incr_is_close_to_t1_but_cheaper_to_build(self):
        dists, truth = build_instance(n=12, k=6, seed=2)
        t1 = run(dists, truth, "T1-on", budget=8, k=6, seed=2)
        incr = run(dists, truth, "incr", budget=8, k=6, seed=2, round_size=4)
        # Quality may lag slightly; catastrophic gaps mean a bug.
        assert incr.distance_to_truth <= t1.distance_to_truth + 0.25


class TestNoisyCrowd:
    def test_majority_voting_beats_single_noisy_worker(self):
        deltas = []
        for seed in range(5):
            dists, truth = build_instance(seed=seed + 20)
            single = SimulatedCrowd(
                truth, worker_accuracy=0.7,
                rng=np.random.default_rng(seed),
            )
            voted = SimulatedCrowd(
                truth, worker_accuracy=0.7, replication=5,
                rng=np.random.default_rng(seed),
            )
            results = []
            for crowd in (single, voted):
                session = UncertaintyReductionSession(
                    dists, 5, crowd,
                    builder=GridBuilder(resolution=400),
                    rng=np.random.default_rng(seed),
                )
                results.append(
                    session.run(POLICIES.create("T1-on"), 8).distance_to_truth
                )
            deltas.append(results[0] - results[1])
        assert np.mean(deltas) >= -0.02  # voting at least as good


class TestEngineConsistency:
    def test_session_outcomes_agree_across_engines(self):
        dists, truth = build_instance(n=8, k=4, seed=5)
        outcomes = {}
        for name, builder in {
            "grid": GridBuilder(resolution=1500),
            "exact": ExactBuilder(),
            "mc": MonteCarloBuilder(samples=300000, seed=0),
        }.items():
            crowd = SimulatedCrowd(truth, rng=np.random.default_rng(1))
            session = UncertaintyReductionSession(
                dists, 4, crowd, builder=builder,
                rng=np.random.default_rng(2),
            )
            outcomes[name] = session.run(POLICIES.create("T1-on"), 30)
        # With enough budget every engine isolates the same ordering.
        for result in outcomes.values():
            assert result.final_space.is_certain
        np.testing.assert_array_equal(
            outcomes["grid"].final_space.paths[0],
            outcomes["exact"].final_space.paths[0],
        )
        np.testing.assert_array_equal(
            outcomes["grid"].final_space.paths[0],
            outcomes["mc"].final_space.paths[0],
        )


class TestTimingKeys:
    """SessionResult.timings uses the documented build/select/update split."""

    TIMING_KEYS = {"build", "select", "update"}

    @pytest.mark.parametrize(
        "policy_name,kwargs",
        [("T1-on", {}), ("TB-off", {}), ("incr", {"round_size": 3})],
    )
    def test_full_run_records_all_three_phases(self, policy_name, kwargs):
        dists, truth = build_instance(n=8, k=4, seed=11)
        result = run(dists, truth, policy_name, budget=5, k=4, **kwargs)
        assert set(result.timings) == self.TIMING_KEYS
        assert all(v >= 0.0 for v in result.timings.values())
        assert result.cpu_seconds == pytest.approx(
            sum(result.timings.values())
        )

    def test_zero_budget_run_never_records_update(self):
        dists, truth = build_instance(n=8, k=4, seed=11)
        result = run(dists, truth, "T1-on", budget=0, k=4)
        assert set(result.timings) <= self.TIMING_KEYS
        assert "update" not in result.timings
        assert "build" in result.timings


class TestMeasuresInSessions:
    @pytest.mark.parametrize("measure_name", ["H", "Hw", "ORA", "MPO"])
    def test_every_measure_drives_a_session(self, measure_name):
        dists, truth = build_instance(n=8, k=4, seed=9)
        crowd = SimulatedCrowd(truth, rng=np.random.default_rng(0))
        session = UncertaintyReductionSession(
            dists, 4, crowd,
            builder=GridBuilder(resolution=400),
            measure=MEASURES.create(measure_name),
            rng=np.random.default_rng(1),
        )
        result = session.run(POLICIES.create("T1-on"), 6)
        assert result.distance_to_truth <= result.initial_distance + 1e-9
