"""Tests for pairwise ops and the shared integration grid."""

import numpy as np
import pytest

from repro.distributions import (
    Grid,
    TruncatedGaussian,
    Uniform,
    certain_order,
    expected_scores,
    joint_sample,
    overlap_matrix,
    prob_greater_matrix,
)


@pytest.fixture
def trio():
    return [Uniform(0.0, 0.5), Uniform(0.3, 0.8), Uniform(0.9, 1.2)]


class TestPairwiseOps:
    def test_prob_greater_matrix_complementary(self, trio):
        matrix = prob_greater_matrix(trio)
        off = ~np.eye(3, dtype=bool)
        np.testing.assert_allclose((matrix + matrix.T)[off], 1.0)
        np.testing.assert_allclose(np.diag(matrix), 0.5)

    def test_prob_greater_matrix_respects_dominance(self, trio):
        matrix = prob_greater_matrix(trio)
        assert matrix[2, 0] == 1.0  # disjoint above
        assert matrix[0, 2] == 0.0

    def test_overlap_matrix(self, trio):
        overlap = overlap_matrix(trio)
        assert overlap[0, 1] and overlap[1, 0]
        assert not overlap[0, 2]
        assert not overlap.diagonal().any()

    def test_certain_order(self, trio):
        certain = certain_order(trio)
        assert certain[2, 0]
        assert not certain[0, 1]
        assert not certain[0, 0]

    def test_joint_sample_shape_and_ranges(self, trio):
        rng = np.random.default_rng(0)
        sample = joint_sample(trio, rng, size=100)
        assert sample.shape == (100, 3)
        for column, dist in enumerate(trio):
            assert sample[:, column].min() >= dist.lower
            assert sample[:, column].max() <= dist.upper

    def test_expected_scores(self, trio):
        np.testing.assert_allclose(
            expected_scores(trio), [0.25, 0.55, 1.05]
        )


class TestGrid:
    def test_construction_covers_supports(self, trio):
        grid = Grid.for_distributions(trio, resolution=128)
        assert grid.edges[0] == pytest.approx(0.0)
        assert grid.edges[-1] == pytest.approx(1.2)
        assert grid.cell_count >= 128

    def test_support_endpoints_are_edges(self, trio):
        grid = Grid.for_distributions(trio, resolution=64)
        for dist in trio:
            assert np.any(np.isclose(grid.edges, dist.lower))
            assert np.any(np.isclose(grid.edges, dist.upper))

    def test_density_integrates_to_one(self, trio):
        grid = Grid.for_distributions(trio, resolution=256)
        for dist in trio:
            assert grid.integral(grid.density(dist)) == pytest.approx(
                1.0, abs=1e-9
            )

    def test_tails_are_complementary(self, trio):
        grid = Grid.for_distributions(trio, resolution=256)
        d = grid.density(trio[1])
        total = grid.upper_tail(d) + grid.lower_tail(d)
        np.testing.assert_allclose(total, 1.0, atol=1e-9)

    def test_upper_tail_matches_survival(self, trio):
        grid = Grid.for_distributions(trio, resolution=512)
        dist = trio[0]
        tail = grid.upper_tail(grid.density(dist))
        np.testing.assert_allclose(
            tail, np.asarray(dist.sf(grid.mids)), atol=2e-3
        )

    def test_gaussian_on_grid(self):
        g = TruncatedGaussian(0.5, 0.1)
        grid = Grid.for_distributions([g], resolution=512)
        assert grid.integral(grid.density(g)) == pytest.approx(1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid(np.array([1.0]))
        with pytest.raises(ValueError):
            Grid(np.array([1.0, 0.5]))
        with pytest.raises(ValueError):
            Grid.for_distributions([], resolution=16)
