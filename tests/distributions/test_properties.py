"""Property-based tests (hypothesis) for the distribution substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Triangular, TruncatedGaussian, Uniform
from repro.distributions.base import ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
width = st.floats(min_value=1e-3, max_value=10, allow_nan=False)


@st.composite
def uniforms(draw):
    lo = draw(finite)
    return Uniform(lo, lo + draw(width))


@st.composite
def triangulars(draw):
    lo = draw(finite)
    w = draw(width)
    mode = lo + draw(st.floats(min_value=0, max_value=1)) * w
    return Triangular(lo, mode, lo + w)


@st.composite
def gaussians(draw):
    return TruncatedGaussian(
        draw(finite), draw(st.floats(min_value=1e-2, max_value=5))
    )


any_distribution = st.one_of(uniforms(), triangulars(), gaussians())


@given(any_distribution)
@settings(max_examples=60, deadline=None)
def test_cdf_is_monotone_and_normalized(dist):
    xs = np.linspace(dist.lower, dist.upper, 101)
    cdf = np.asarray(dist.cdf(xs))
    assert np.all(np.diff(cdf) >= -1e-9)
    assert abs(float(cdf[-1]) - 1.0) < 1e-6
    assert float(cdf[0]) < 1e-6 + 1e-9


@given(any_distribution, st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_quantile_is_cdf_inverse(dist, p):
    x = float(np.asarray(dist.quantile(np.array([p])))[0])
    assert dist.lower - 1e-9 <= x <= dist.upper + 1e-9
    assert abs(float(np.asarray(dist.cdf(np.array([x])))[0]) - p) < 2e-2


@given(uniforms(), uniforms())
@settings(max_examples=60, deadline=None)
def test_prob_greater_is_complementary(x, y):
    p_xy = x.prob_greater(y)
    p_yx = y.prob_greater(x)
    assert 0.0 <= p_xy <= 1.0
    assert abs(p_xy + p_yx - 1.0) < 1e-9


@given(uniforms(), uniforms())
@settings(max_examples=40, deadline=None)
def test_closed_form_matches_piecewise_machinery(x, y):
    closed = x.prob_greater(y)
    generic = ScoreDistribution.prob_greater(x, y)
    assert abs(closed - generic) < 1e-9


@given(any_distribution)
@settings(max_examples=40, deadline=None)
def test_piecewise_pdf_total_mass(dist):
    assert abs(dist.piecewise_pdf().definite_integral() - 1.0) < 1e-6


@given(
    st.lists(
        st.tuples(finite, st.floats(min_value=0.1, max_value=5)),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_piecewise_sum_linearity(pieces):
    """Integral of a sum equals the sum of integrals."""
    functions = [
        PiecewisePolynomial.constant(1.0, lo, lo + w) for lo, w in pieces
    ]
    total = functions[0]
    for f in functions[1:]:
        total = total + f
    expected = sum(f.definite_integral() for f in functions)
    assert abs(total.definite_integral() - expected) < 1e-7


@given(uniforms(), st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=40, deadline=None)
def test_sampling_matches_cdf(dist, p):
    """Empirical CDF at the p-quantile is close to p."""
    rng = np.random.default_rng(0)
    samples = np.asarray(dist.sample(rng, 4000))
    x = float(np.asarray(dist.quantile(np.array([p])))[0])
    empirical = float(np.mean(samples <= x))
    assert abs(empirical - p) < 0.05
