"""Per-family tests for the concrete score distributions."""

import numpy as np
import pytest

from repro.distributions import (
    Histogram,
    PointMass,
    Triangular,
    TruncatedGaussian,
    TruncatedPareto,
    Uniform,
)
from repro.distributions.affine import AffineDistribution

ALL_FAMILIES = [
    Uniform(0.2, 0.9),
    Triangular(0.0, 0.3, 1.0),
    TruncatedGaussian(0.5, 0.12),
    TruncatedPareto(1.0, 1.8, 8.0),
    Histogram([0.0, 0.3, 0.6, 1.0], [0.2, 0.5, 0.3]),
    AffineDistribution(Uniform(0.0, 1.0), 2.0, -0.5),
    AffineDistribution(Triangular(0.0, 0.4, 1.0), -1.0, 1.0),
]


@pytest.mark.parametrize("dist", ALL_FAMILIES, ids=lambda d: repr(d))
class TestCommonContract:
    def test_support_is_ordered(self, dist):
        assert dist.lower < dist.upper

    def test_pdf_nonnegative_and_zero_outside(self, dist):
        xs = np.linspace(dist.lower - 1, dist.upper + 1, 301)
        pdf = np.asarray(dist.pdf(xs))
        assert np.all(pdf >= -1e-12)
        assert np.all(pdf[xs < dist.lower] == 0)
        assert np.all(pdf[xs > dist.upper] == 0)

    def test_cdf_monotone_and_bounded(self, dist):
        xs = np.linspace(dist.lower - 0.5, dist.upper + 0.5, 301)
        cdf = np.asarray(dist.cdf(xs))
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == pytest.approx(0.0, abs=1e-9)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-9)

    def test_quantile_inverts_cdf(self, dist):
        ps = np.linspace(0.05, 0.95, 19)
        xs = np.asarray(dist.quantile(ps))
        back = np.asarray(dist.cdf(xs))
        np.testing.assert_allclose(back, ps, atol=5e-3)

    def test_pdf_integrates_to_one(self, dist):
        xs = np.linspace(dist.lower, dist.upper, 20001)
        mass = np.trapezoid(np.asarray(dist.pdf(xs)), xs)
        assert mass == pytest.approx(1.0, abs=2e-3)

    def test_mean_and_variance_match_sampling(self, dist):
        rng = np.random.default_rng(0)
        samples = np.asarray(dist.sample(rng, 200000))
        assert dist.mean() == pytest.approx(samples.mean(), abs=0.02 * dist.width() + 1e-3)
        assert dist.variance() == pytest.approx(samples.var(), rel=0.15, abs=1e-4)

    def test_samples_stay_in_support(self, dist):
        rng = np.random.default_rng(1)
        samples = np.asarray(dist.sample(rng, 5000))
        assert samples.min() >= dist.lower - 1e-9
        assert samples.max() <= dist.upper + 1e-9

    def test_piecewise_pdf_matches_analytic(self, dist):
        pw = dist.piecewise_pdf()
        assert pw.definite_integral() == pytest.approx(1.0, abs=1e-6)
        # Compare CDFs (robust to histogram discretization of smooth pdfs).
        anti = pw.antiderivative()
        xs = np.linspace(dist.lower + 1e-9, dist.upper - 1e-9, 57)
        np.testing.assert_allclose(
            anti(xs), np.asarray(dist.cdf(xs)), atol=2e-2
        )

    def test_prob_greater_agrees_with_monte_carlo(self, dist):
        other = Uniform(dist.lower, dist.upper)
        p = dist.prob_greater(other)
        rng = np.random.default_rng(2)
        xs = np.asarray(dist.sample(rng, 150000))
        ys = np.asarray(other.sample(rng, 150000))
        assert p == pytest.approx(float(np.mean(xs > ys)), abs=0.01)


class TestUniform:
    def test_validation(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(np.inf, 2.0)

    def test_closed_form_moments(self):
        u = Uniform(2.0, 6.0)
        assert u.mean() == pytest.approx(4.0)
        assert u.variance() == pytest.approx(16.0 / 12.0)

    def test_prob_greater_disjoint(self):
        assert Uniform(2, 3).prob_greater(Uniform(0, 1)) == 1.0
        assert Uniform(0, 1).prob_greater(Uniform(2, 3)) == 0.0

    def test_prob_greater_identical_is_half(self):
        u = Uniform(0, 1)
        assert u.prob_greater(Uniform(0, 1)) == pytest.approx(0.5)

    def test_prob_greater_nested(self):
        # Closed form cross-check computed by hand:
        # X~U(0,2), Y~U(0.5,1): Pr(X>Y) = 1 - E[X<Y]... use MC tolerance.
        p = Uniform(0, 2).prob_greater(Uniform(0.5, 1.0))
        rng = np.random.default_rng(3)
        mc = np.mean(rng.uniform(0, 2, 200000) > rng.uniform(0.5, 1, 200000))
        assert p == pytest.approx(mc, abs=0.005)


class TestTriangular:
    def test_validation(self):
        with pytest.raises(ValueError):
            Triangular(0, 2, 1)
        with pytest.raises(ValueError):
            Triangular(1, 1, 1)

    def test_degenerate_modes(self):
        left = Triangular(0, 0, 1)   # pure falling ramp
        right = Triangular(0, 1, 1)  # pure rising ramp
        assert left.pdf(np.array([0.0]))[0] == pytest.approx(2.0)
        assert right.piecewise_pdf().definite_integral() == pytest.approx(1.0)

    def test_mode_property(self):
        assert Triangular(0, 0.25, 1).mode == 0.25


class TestGaussian:
    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedGaussian(0, 0)
        with pytest.raises(ValueError):
            TruncatedGaussian(0, 1, lower=2, upper=1)

    def test_default_truncation_at_four_sigma(self):
        g = TruncatedGaussian(10.0, 2.0)
        assert g.lower == pytest.approx(2.0)
        assert g.upper == pytest.approx(18.0)

    def test_symmetric_truncation_keeps_mean(self):
        g = TruncatedGaussian(0.5, 0.1)
        assert g.mean() == pytest.approx(0.5, abs=1e-12)
        assert g.variance() < 0.1**2  # truncation shrinks variance

    def test_asymmetric_truncation_shifts_mean(self):
        g = TruncatedGaussian(0.0, 1.0, lower=0.0, upper=4.0)
        assert g.mean() > 0.5


class TestPareto:
    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedPareto(0, 1, 2)
        with pytest.raises(ValueError):
            TruncatedPareto(1, -1, 2)
        with pytest.raises(ValueError):
            TruncatedPareto(1, 1, 0.5)

    def test_special_shape_one_mean(self):
        p = TruncatedPareto(1.0, 1.0, 10.0)
        rng = np.random.default_rng(4)
        assert p.mean() == pytest.approx(
            np.asarray(p.sample(rng, 300000)).mean(), rel=0.02
        )


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram([0, 1], [1, 2])
        with pytest.raises(ValueError):
            Histogram([1, 0], [1])
        with pytest.raises(ValueError):
            Histogram([0, 1], [-1])
        with pytest.raises(ValueError):
            Histogram([0, 1], [0])

    def test_normalizes_masses(self):
        h = Histogram([0, 1, 2], [2, 2])
        np.testing.assert_allclose(h.masses, [0.5, 0.5])

    def test_from_samples_roundtrip(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(5.0, 1.0, 50000)
        h = Histogram.from_samples(samples, bins=64)
        assert h.mean() == pytest.approx(5.0, abs=0.05)

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([])

    def test_discretize_preserves_cdf(self):
        g = TruncatedGaussian(0.0, 1.0)
        h = Histogram.discretize(g, bins=128)
        xs = np.linspace(-3, 3, 31)
        np.testing.assert_allclose(h.cdf(xs), g.cdf(xs), atol=0.02)


class TestPointMass:
    def test_deterministic_flag(self):
        assert PointMass(1.0).is_deterministic
        assert not Uniform(0, 1).is_deterministic

    def test_comparisons(self):
        p = PointMass(0.5)
        assert p.prob_greater(PointMass(0.2)) == 1.0
        assert p.prob_greater(PointMass(0.8)) == 0.0
        assert p.prob_greater(PointMass(0.5)) == 0.5
        assert p.prob_greater(Uniform(0, 1)) == pytest.approx(0.5)
        assert Uniform(0, 1).prob_greater(p) == pytest.approx(0.5)

    def test_overlap_semantics(self):
        p = PointMass(0.5)
        assert p.overlaps(Uniform(0, 1))
        assert not p.overlaps(Uniform(0.6, 1))
        assert not p.overlaps(PointMass(0.5))

    def test_sampling_is_constant(self):
        p = PointMass(2.5)
        assert p.sample() == 2.5
        np.testing.assert_allclose(p.sample(size=4), [2.5] * 4)


class TestAffine:
    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            AffineDistribution(Uniform(0, 1), 0.0)

    def test_positive_scale_moments(self):
        base = Uniform(0, 1)
        t = AffineDistribution(base, 3.0, 1.0)
        assert t.mean() == pytest.approx(2.5)
        assert t.variance() == pytest.approx(9.0 / 12.0)
        assert t.support == (1.0, 4.0)

    def test_negative_scale_flips_support(self):
        t = AffineDistribution(Uniform(0, 1), -2.0, 0.0)
        assert t.support == (-2.0, 0.0)
        assert t.mean() == pytest.approx(-1.0)

    def test_negative_scale_cdf_consistency(self):
        base = Triangular(0, 0.3, 1)
        t = AffineDistribution(base, -1.0, 2.0)
        xs = np.linspace(t.lower + 1e-9, t.upper - 1e-9, 41)
        anti = t.piecewise_pdf().antiderivative()
        np.testing.assert_allclose(anti(xs), np.asarray(t.cdf(xs)), atol=1e-6)
