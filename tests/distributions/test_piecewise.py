"""Tests for the piecewise-polynomial algebra (the exact engine's core)."""

import numpy as np
import pytest

from repro.distributions.piecewise import (
    PiecewisePolynomial,
    product,
    shift_coefficients,
)


@pytest.fixture
def ramp():
    """f(x) = x on [0, 1] (degree 1, single piece)."""
    return PiecewisePolynomial([0.0, 1.0], [[0.0, 1.0]])


@pytest.fixture
def box():
    """f(x) = 2 on [0.5, 1.0]."""
    return PiecewisePolynomial.constant(2.0, 0.5, 1.0)


class TestConstruction:
    def test_requires_increasing_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial([1.0, 0.0], [[1.0]])

    def test_requires_matching_piece_count(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial([0.0, 1.0, 2.0], [[1.0]])

    def test_rejects_empty_coefficients(self):
        with pytest.raises(ValueError):
            PiecewisePolynomial([0.0, 1.0], [[]])

    def test_from_histogram(self):
        f = PiecewisePolynomial.from_histogram([0, 1, 3], [0.5, 0.25])
        assert f(0.5) == 0.5
        assert f(2.0) == 0.25
        assert f.definite_integral() == pytest.approx(1.0)

    def test_zero_and_constant(self):
        z = PiecewisePolynomial.zero(0, 2)
        assert z.is_zero()
        c = PiecewisePolynomial.constant(3.0, 0, 2)
        assert c(1.0) == 3.0
        assert not c.is_zero()


class TestEvaluation:
    def test_zero_outside_support(self, ramp):
        assert ramp(-0.5) == 0.0
        assert ramp(1.5) == 0.0

    def test_vectorized(self, ramp):
        x = np.array([-1.0, 0.25, 0.75, 2.0])
        np.testing.assert_allclose(ramp(x), [0.0, 0.25, 0.75, 0.0])

    def test_scalar_returns_float(self, ramp):
        assert isinstance(ramp(0.5), float)

    def test_multi_piece_evaluation(self):
        f = PiecewisePolynomial([0, 1, 2], [[1.0], [0.0, 1.0]])
        assert f(0.5) == 1.0
        assert f(1.5) == pytest.approx(0.5)  # local coordinate u = x − 1


class TestCalculus:
    def test_antiderivative_of_ramp(self, ramp):
        anti = ramp.antiderivative()
        assert anti(0.0) == pytest.approx(0.0)
        assert anti(1.0) == pytest.approx(0.5)
        assert anti(0.5) == pytest.approx(0.125)

    def test_antiderivative_continuous_across_pieces(self):
        f = PiecewisePolynomial([0, 1, 2], [[1.0], [3.0]])
        anti = f.antiderivative()
        assert anti(1.0) == pytest.approx(1.0)
        assert anti(2.0) == pytest.approx(4.0)

    def test_definite_integral_full_and_partial(self, ramp):
        assert ramp.definite_integral() == pytest.approx(0.5)
        assert ramp.definite_integral(0.0, 0.5) == pytest.approx(0.125)
        assert ramp.definite_integral(0.5, 2.0) == pytest.approx(0.375)
        assert ramp.definite_integral(2.0, 3.0) == 0.0

    def test_derivative_inverts_antiderivative(self, ramp):
        roundtrip = ramp.antiderivative().derivative()
        x = np.linspace(0.01, 0.99, 17)
        np.testing.assert_allclose(roundtrip(x), ramp(x), atol=1e-12)


class TestAlgebra:
    def test_scalar_multiplication(self, ramp):
        doubled = ramp * 2.0
        assert doubled(0.5) == pytest.approx(1.0)
        assert (2.0 * ramp)(0.5) == pytest.approx(1.0)

    def test_product_intersects_supports(self, ramp, box):
        prod = ramp * box
        assert prod.lower == pytest.approx(0.5)
        assert prod.upper == pytest.approx(1.0)
        assert prod(0.75) == pytest.approx(1.5)  # 0.75 · 2
        assert prod(0.25) == 0.0

    def test_product_of_disjoint_supports_is_zero(self):
        a = PiecewisePolynomial.constant(1.0, 0.0, 1.0)
        b = PiecewisePolynomial.constant(1.0, 2.0, 3.0)
        assert (a * b).is_zero()

    def test_product_integral_matches_numerics(self, ramp, box):
        prod = ramp * box
        xs = np.linspace(0.5, 1.0, 20001)
        numeric = np.trapezoid(ramp(xs) * box(xs), xs)
        assert prod.definite_integral() == pytest.approx(numeric, abs=1e-6)

    def test_addition_unions_supports(self, ramp, box):
        total = ramp + box
        assert total(0.25) == pytest.approx(0.25)
        assert total(0.75) == pytest.approx(2.75)

    def test_subtraction_and_negation(self, ramp):
        zero = ramp - ramp
        assert zero.is_zero(tolerance=1e-12)
        assert (-ramp)(0.5) == pytest.approx(-0.5)

    def test_degree_of_product_adds(self, ramp):
        quad = ramp * ramp
        assert quad.degree == 2
        assert quad(0.5) == pytest.approx(0.25)

    def test_balanced_product_helper(self):
        factors = [PiecewisePolynomial([0, 1], [[0.0, 1.0]])] * 4
        result = product(factors)
        assert result(0.5) == pytest.approx(0.5**4)
        with pytest.raises(ValueError):
            product([])


class TestTransformations:
    def test_clip_domain(self, ramp):
        clipped = ramp.clip_domain(0.25, 0.75)
        assert clipped(0.5) == pytest.approx(0.5)
        assert clipped(0.1) == 0.0

    def test_extend_right_constant(self, ramp):
        anti = ramp.antiderivative().extend_right_constant(3.0)
        assert anti(2.5) == pytest.approx(0.5)

    def test_extend_domain_pads_zeros(self, box):
        wide = box.extend_domain(0.0, 2.0)
        assert wide(0.1) == 0.0
        assert wide(0.75) == pytest.approx(2.0)
        assert wide(1.5) == 0.0

    def test_simplify_merges_equal_pieces(self):
        f = PiecewisePolynomial([0, 1, 2], [[1.0], [1.0]])
        simplified = f.simplify()
        assert simplified.piece_count == 1
        assert simplified(1.5) == 1.0

    def test_simplify_keeps_distinct_pieces(self):
        f = PiecewisePolynomial([0, 1, 2], [[1.0], [2.0]])
        assert f.simplify().piece_count == 2

    def test_simplify_merges_continued_polynomials(self):
        # x on [0,1] and (x−1)+1 = x on [1,2]: same global polynomial.
        f = PiecewisePolynomial([0, 1, 2], [[0.0, 1.0], [1.0, 1.0]])
        assert f.simplify(tolerance=1e-12).piece_count == 1


class TestShiftCoefficients:
    def test_shift_constant_is_identity(self):
        c = np.array([5.0])
        np.testing.assert_allclose(shift_coefficients(c, 2.0), c)

    def test_shift_linear(self):
        # p(u) = 3 + 2u rebased at delta: p(v + delta) = (3 + 2·delta) + 2v
        shifted = shift_coefficients(np.array([3.0, 2.0]), 1.5)
        np.testing.assert_allclose(shifted, [6.0, 2.0])

    def test_shift_quadratic_matches_evaluation(self):
        coeffs = np.array([1.0, -2.0, 3.0])
        delta = 0.7
        shifted = shift_coefficients(coeffs, delta)
        for v in [0.0, 0.3, 1.1]:
            direct = np.polyval(coeffs[::-1], v + delta)
            rebased = np.polyval(shifted[::-1], v)
            assert rebased == pytest.approx(direct)


def test_sample_values_shape(ramp):
    x, y = ramp.sample_values(33)
    assert x.shape == (33,) and y.shape == (33,)
    assert y[0] == pytest.approx(0.0)
