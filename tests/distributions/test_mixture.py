"""Tests for mixture distributions."""

import numpy as np
import pytest

from repro.distributions import Mixture, TruncatedGaussian, Uniform


@pytest.fixture
def bimodal():
    """Reviews split 60/40 between 'bad' and 'great'."""
    return Mixture(
        [Uniform(1.0, 2.0), Uniform(4.0, 5.0)], weights=[0.6, 0.4]
    )


class TestConstruction:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Uniform(0, 1)], [0.5, 0.5])
        with pytest.raises(ValueError):
            Mixture([Uniform(0, 1), Uniform(1, 2)], [0.7, 0.7])

    def test_support_spans_components(self, bimodal):
        assert bimodal.support == (1.0, 5.0)


class TestProbability:
    def test_pdf_is_weighted_sum(self, bimodal):
        assert bimodal.pdf(np.array([1.5]))[0] == pytest.approx(0.6)
        assert bimodal.pdf(np.array([4.5]))[0] == pytest.approx(0.4)
        assert bimodal.pdf(np.array([3.0]))[0] == 0.0  # the gap

    def test_cdf_plateaus_in_gap(self, bimodal):
        assert bimodal.cdf(np.array([2.5]))[0] == pytest.approx(0.6)
        assert bimodal.cdf(np.array([5.0]))[0] == pytest.approx(1.0)

    def test_quantile_inverts_cdf_even_across_gap(self, bimodal):
        ps = np.array([0.1, 0.3, 0.59, 0.61, 0.9])
        xs = bimodal.quantile(ps)
        np.testing.assert_allclose(bimodal.cdf(xs), ps, atol=1e-6)

    def test_moments(self, bimodal):
        assert bimodal.mean() == pytest.approx(0.6 * 1.5 + 0.4 * 4.5)
        rng = np.random.default_rng(0)
        samples = bimodal.sample(rng, 200000)
        assert bimodal.variance() == pytest.approx(samples.var(), rel=0.05)

    def test_sampling_respects_weights(self, bimodal):
        rng = np.random.default_rng(1)
        samples = bimodal.sample(rng, 100000)
        low_fraction = float(np.mean(samples < 3.0))
        assert low_fraction == pytest.approx(0.6, abs=0.01)

    def test_scalar_sampling(self, bimodal):
        value = bimodal.sample(np.random.default_rng(2))
        assert 1.0 <= float(value) <= 5.0


class TestIntegration:
    def test_piecewise_pdf_mass(self, bimodal):
        assert bimodal.piecewise_pdf().definite_integral() == pytest.approx(1.0)

    def test_prob_greater_with_gap(self, bimodal):
        other = Uniform(2.5, 3.5)  # entirely inside the gap
        # X > Y iff X came from the upper component: probability 0.4.
        assert bimodal.prob_greater(other) == pytest.approx(0.4, abs=1e-6)

    def test_mixture_in_tpo(self):
        from repro.tpo import GridBuilder

        dists = [
            Mixture([Uniform(0, 0.4), Uniform(0.6, 1.0)], [0.5, 0.5]),
            Uniform(0.3, 0.7),
            TruncatedGaussian(0.5, 0.1),
        ]
        tree = GridBuilder(resolution=800).build(dists, 2)
        tree.validate(tolerance=1e-4)
        assert tree.to_space().size >= 2
