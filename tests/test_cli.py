"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.api import all_registries
from repro.cli import main


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestList:
    def test_lists_every_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind, registry in all_registries().items():
            assert f"{kind} ({len(registry)})" in out
        assert "T1-on" in out
        assert "sensor_network" in out

    def test_kind_filter(self, capsys):
        assert main(["list", "--kind", "measures"]) == 0
        out = capsys.readouterr().out
        assert "measures (4): H, Hw, MPO, ORA" in out
        assert "policies" not in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engines"] == ["exact", "grid", "mc"]
        assert set(payload) == set(all_registries())

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["list", "--kind", "gadgets"])


class TestDemo:
    def test_demo_runs_and_prints_summary(self, capsys):
        code = main(
            ["demo", "--n", "8", "--k", "4", "--budget", "5", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "true top-4" in out
        assert "T1-on" in out
        assert "most probable top-4" in out

    def test_demo_other_policy(self, capsys):
        code = main(
            ["demo", "--policy", "naive", "--n", "8", "--k", "3",
             "--budget", "3"]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out

    def test_demo_noisy(self, capsys):
        code = main(
            ["demo", "--n", "7", "--k", "3", "--budget", "3",
             "--accuracy", "0.8"]
        )
        assert code == 0
        assert "accuracy=0.8" in capsys.readouterr().out

    def test_demo_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["demo", "--policy", "clairvoyant"])


class TestInspect:
    def test_inspect_prints_profile(self, capsys):
        code = main(["inspect", "--n", "8", "--k", "4", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overlap_fraction" in out
        assert "orderings:" in out
        assert "best questions to ask" in out

    def test_inspect_other_workload(self, capsys):
        code = main(["inspect", "--workload", "gaussian", "--n", "6",
                     "--k", "3"])
        assert code == 0


class TestExperiment:
    def test_unknown_experiment_id(self, capsys):
        code = main(["experiment", "NOPE"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_astar_fast(self, capsys):
        code = main(["experiment", "ASTAR"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ASTAR" in out
        assert "A*-off" in out

    def test_id_is_case_insensitive(self, capsys):
        code = main(["experiment", "astar"])
        assert code == 0


class TestRunGrid:
    ARGS = ["run-grid", "FIG1A", "--policies", "T1-on,naive",
            "--budgets", "0,5"]

    def test_runs_filtered_grid_serially(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG1A: 8 rows, executed 8, skipped 0, workers 1" in out
        assert "D(omega_r, T_K)" in out

    def test_store_and_resume_skip_completed_cells(self, capsys, tmp_path):
        store = str(tmp_path / "grid.jsonl")
        assert main(self.ARGS + ["--store", store]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--store", store, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "executed 0, skipped 8" in out

    def test_list_prints_cells_without_running(self, capsys):
        code = main(self.ARGS + ["--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG1A: 8 cells" in out
        assert '"policy":"T1-on"' in out

    def test_resume_requires_store(self, capsys):
        code = main(["run-grid", "FIG1A", "--resume"])
        assert code == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_unknown_id(self, capsys):
        code = main(["run-grid", "NOPE"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestServiceCommands:
    def test_serve_resume_requires_log(self, capsys):
        code = main(["serve", "--resume"])
        assert code == 2
        assert "--resume requires --log" in capsys.readouterr().err

    def test_serve_fleet_rejects_in_process_store(self, capsys):
        code = main(["serve", "--workers", "2", "--store", "memory"])
        assert code == 2
        assert "cross-process" in capsys.readouterr().err

    def test_serve_flags_build_a_serve_spec(self):
        from repro.cli import _build_parser, _serve_spec_from_args

        args = _build_parser().parse_args(
            ["serve", "--workers", "4", "--log", "/tmp/events.jsonl"]
        )
        spec = _serve_spec_from_args(args)
        assert spec.workers == 4
        # A fleet defaults to the shared disk tier, keyed off the log.
        assert spec.store.backend == "disk-npz"
        assert spec.store.path == "/tmp/events.jsonl.store"

        args = _build_parser().parse_args(["serve"])
        spec = _serve_spec_from_args(args)
        assert spec.workers == 1
        assert spec.store.backend == "none"  # single process unchanged

    def test_bench_service_smoke(self, capsys, tmp_path):
        artifact = str(tmp_path / "BENCH_service.json")
        code = main(["bench-service", "--smoke", "--json", artifact])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "resumed run identical: True" in out

    def test_bench_engines_smoke(self, capsys, tmp_path):
        artifact = str(tmp_path / "BENCH_engines.json")
        code = main(["bench-engines", "--smoke", "--json", artifact])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "leaf order identical=True" in out


class TestEval:
    def test_eval_golden_suite_passes(self, capsys):
        code = main(["eval", "--suite", "golden"])
        assert code == 0
        out = capsys.readouterr().out
        assert "golden" in out
        assert "overall" in out
        assert "PASS" in out

    def test_eval_unknown_suite_rejected(self, capsys):
        code = main(["eval", "--suite", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown eval suites" in err
        assert "golden" in err  # lists what IS available

    def test_eval_resume_requires_store_dir(self, capsys):
        code = main(["eval", "--resume"])
        assert code == 2
        assert "--resume requires --store-dir" in capsys.readouterr().err

    def test_eval_writes_json_report(self, capsys, tmp_path):
        artifact = tmp_path / "EVAL_report.json"
        code = main(["eval", "--suite", "golden", "--json", str(artifact)])
        assert code == 0
        report = json.loads(artifact.read_text())
        assert report["passed"]
        assert report["suites"]["golden"]["passed"]

    def test_eval_baseline_comparison_is_clean(self, capsys, tmp_path):
        artifact = tmp_path / "EVAL_report.json"
        assert main(
            ["eval", "--suite", "golden", "--json", str(artifact)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["eval", "--suite", "golden", "--baseline", str(artifact)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "no regressions" in captured.out
        assert "REGRESSION" not in captured.err

    def test_eval_suite_filter_narrows_baseline_comparison(
        self, capsys, tmp_path
    ):
        """A --suite selection must not flag the deliberately skipped
        suites as 'present in baseline, not run' regressions."""
        artifact = tmp_path / "EVAL_report.json"
        assert main(["eval", "--json", str(artifact)]) == 0
        capsys.readouterr()
        code = main(
            ["eval", "--suite", "golden", "--baseline", str(artifact)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "no regressions" in captured.out
        assert "not run" not in captured.err
