"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs_and_prints_summary(self, capsys):
        code = main(
            ["demo", "--n", "8", "--k", "4", "--budget", "5", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "true top-4" in out
        assert "T1-on" in out
        assert "most probable top-4" in out

    def test_demo_other_policy(self, capsys):
        code = main(
            ["demo", "--policy", "naive", "--n", "8", "--k", "3",
             "--budget", "3"]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out

    def test_demo_noisy(self, capsys):
        code = main(
            ["demo", "--n", "7", "--k", "3", "--budget", "3",
             "--accuracy", "0.8"]
        )
        assert code == 0
        assert "accuracy=0.8" in capsys.readouterr().out

    def test_demo_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["demo", "--policy", "clairvoyant"])


class TestInspect:
    def test_inspect_prints_profile(self, capsys):
        code = main(["inspect", "--n", "8", "--k", "4", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overlap_fraction" in out
        assert "orderings:" in out
        assert "best questions to ask" in out

    def test_inspect_other_workload(self, capsys):
        code = main(["inspect", "--workload", "gaussian", "--n", "6",
                     "--k", "3"])
        assert code == 0


class TestExperiment:
    def test_unknown_experiment_id(self, capsys):
        code = main(["experiment", "NOPE"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_astar_fast(self, capsys):
        code = main(["experiment", "ASTAR"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ASTAR" in out
        assert "A*-off" in out

    def test_id_is_case_insensitive(self, capsys):
        code = main(["experiment", "astar"])
        assert code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
