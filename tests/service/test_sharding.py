"""Tests for the sharded multi-worker serve runtime."""

import asyncio
import collections
import json
import time
from pathlib import Path

import pytest

from repro.api.specs import ServeSpec, StoreSpec
from repro.service.sharding import (
    ShardedService,
    shard_for,
    worker_log_path,
)

SPEC = {
    "workload": "uniform",
    "n": 8,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for workers in (1, 2, 3, 7):
            for index in range(50):
                sid = f"s{index:04d}"
                shard = shard_for(sid, workers)
                assert 0 <= shard < workers
                assert shard == shard_for(sid, workers)

    def test_distribution_is_roughly_even(self):
        counts = collections.Counter(
            shard_for(f"session-{index}", 4) for index in range(400)
        )
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 50

    def test_single_worker_takes_everything(self):
        assert shard_for("anything", 1) == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            shard_for("sid", 0)
        with pytest.raises(ValueError):
            shard_for("sid", 2, strategy="round-robin")


class TestWorkerLogPath:
    def test_inserts_shard_before_suffix(self):
        assert worker_log_path("events.jsonl", 2) == Path("events.w2.jsonl")
        assert worker_log_path(
            Path("/tmp/run/events.jsonl"), 0
        ) == Path("/tmp/run/events.w0.jsonl")

    def test_none_base_stays_none(self):
        assert worker_log_path(None, 3) is None

    def test_shards_never_collide(self):
        paths = {worker_log_path("events.jsonl", s) for s in range(8)}
        assert len(paths) == 8


async def http(host, port, method, path, body=None):
    """Minimal HTTP/1.1 client: one request, one JSON response."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


def with_fleet(coro, tmp_path, workers=2):
    """Run ``coro(host, port, service)`` against a live 2-worker fleet."""
    spec = ServeSpec(
        host="127.0.0.1",
        port=0,
        workers=workers,
        store=StoreSpec(backend="disk-npz", path=str(tmp_path / "cold")),
        log=str(tmp_path / "events.jsonl"),
        resolution=256,
    )
    service = ShardedService(spec, monitor_interval=0.05)
    service.start_workers()

    async def runner():
        server = await service.start()
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await coro(host, port, service)
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    try:
        return asyncio.run(runner())
    finally:
        service.stop_workers()


class TestFleetHttp:
    def test_fleet_lifecycle_and_fanout(self, tmp_path):
        async def scenario(host, port, service):
            # Health fans out to every worker.
            assert await http(host, port, "GET", "/v1/healthz") == (
                200,
                {"ok": True},
            )

            # Meta reports the router topology.
            status, meta = await http(host, port, "GET", "/v1/meta")
            assert status == 200
            assert meta["topology"]["role"] == "router"
            assert meta["topology"]["workers"] == 2
            assert meta["topology"]["strategy"] == "blake2b"

            # Sessions land on the shard their id hashes to and are
            # reachable back through the router.
            sids = []
            for _ in range(6):
                status, created = await http(
                    host, port, "POST", "/v1/sessions", {"spec": SPEC}
                )
                assert status == 200
                sids.append(created["session_id"])

            for sid in sids:
                status, nxt = await http(
                    host, port, "GET", f"/v1/sessions/{sid}/next"
                )
                assert status == 200 and "question" in nxt
                question = nxt["question"]
                status, applied = await http(
                    host,
                    port,
                    "POST",
                    f"/v1/sessions/{sid}/answers",
                    {
                        "i": question["i"],
                        "j": question["j"],
                        "holds": True,
                    },
                )
                assert status == 200
                assert applied["questions_asked"] == 1

            # The merged session list covers both shards.
            status, listed = await http(host, port, "GET", "/v1/sessions")
            assert status == 200
            assert sorted(listed["sessions"]) == sorted(sids)

            # Cluster stats: per-worker payloads plus fleet totals.
            status, stats = await http(host, port, "GET", "/v1/stats")
            assert status == 200
            assert stats["topology"]["role"] == "router"
            assert len(stats["workers"]) == 2
            shards = {worker["shard"] for worker in stats["workers"]}
            assert shards == {0, 1}
            assert stats["sessions"]["active"] == len(sids)
            # Everyone shares one instance: exactly one build fleet-wide.
            assert stats["store"]["builds"] == 1
            assert (
                stats["store"]["cold_hits"] + stats["store"]["cold_waited"]
                >= 1
            )

            # Unknown sessions surface the worker's own 404 envelope.
            status, error = await http(
                host, port, "GET", "/v1/sessions/nope/next"
            )
            assert status == 404
            assert error["error"]["code"] == "not_found"

        with_fleet(scenario, tmp_path)

    def test_legacy_unversioned_paths_still_route(self, tmp_path):
        async def scenario(host, port, service):
            assert await http(host, port, "GET", "/healthz") == (
                200,
                {"ok": True},
            )
            status, created = await http(
                host, port, "POST", "/sessions", SPEC
            )  # legacy bare-spec body
            assert status == 200
            sid = created["session_id"]
            status, nxt = await http(
                host, port, "GET", f"/sessions/{sid}/next"
            )
            assert status == 200 and "question" in nxt

        with_fleet(scenario, tmp_path)

    def test_client_chosen_session_id_is_respected(self, tmp_path):
        async def scenario(host, port, service):
            status, created = await http(
                host,
                port,
                "POST",
                "/v1/sessions",
                {"spec": SPEC, "session_id": "pinned"},
            )
            assert status == 200
            assert created["session_id"] == "pinned"
            status, snapshot = await http(
                host, port, "GET", "/v1/sessions/pinned"
            )
            assert status == 200

        with_fleet(scenario, tmp_path)

    def test_killed_worker_restarts_with_state(self, tmp_path):
        async def scenario(host, port, service):
            status, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            status, nxt = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            question = nxt["question"]
            await http(
                host,
                port,
                "POST",
                f"/v1/sessions/{sid}/answers",
                {"i": question["i"], "j": question["j"], "holds": True},
            )
            _, before = await http(host, port, "GET", f"/v1/sessions/{sid}")

            shard = shard_for(sid, service.spec.workers)
            service._procs[shard].terminate()

            deadline = time.monotonic() + 30.0
            after = None
            while time.monotonic() < deadline:
                status, payload = await http(
                    host, port, "GET", f"/v1/sessions/{sid}"
                )
                if status == 200:
                    after = payload
                    break
                await asyncio.sleep(0.05)
            assert service.restarts >= 1
            # The restarted worker replayed its shard log: identical state.
            assert after == before

        with_fleet(scenario, tmp_path)
