"""Tests for the session manager: lifecycle, coalescing, durability."""

import json

import pytest

from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.service.cache import TPOCache
from repro.api import InstanceSpec
from repro.service.manager import (
    ClosedSessionError,
    EventLog,
    SessionManager,
    UnknownSessionError,
    materialize_instance,
    normalize_spec,
)
from repro.tpo.builders import GridBuilder
from repro.utils.rng import derive_seed, ensure_rng

SPEC = {
    "workload": "uniform",
    "n": 10,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


def make_manager(**kwargs):
    kwargs.setdefault("builder", GridBuilder(resolution=256))
    return SessionManager(**kwargs)


def make_crowd(spec):
    distributions = InstanceSpec.from_dict(spec).materialize()
    truth = GroundTruth.sample(
        distributions, ensure_rng(derive_seed(spec["seed"], "truth"))
    )
    return SimulatedCrowd(truth, worker_accuracy=1.0)


def play(manager, sid, crowd, steps):
    """Answer up to ``steps`` questions through the manager."""
    for _ in range(steps):
        question = manager.next_question(sid)
        if question is None:
            break
        answer = crowd.ask(question)
        manager.submit_answer(
            sid, question.i, question.j, answer.holds, answer.accuracy
        )


class TestSpecs:
    def test_from_dict_fills_defaults_and_sorts_params(self):
        spec = InstanceSpec.from_dict(
            {"workload": "uniform", "n": 6, "k": 3, "params": {"width": 0.2}}
        ).to_dict()
        assert spec["seed"] == 0
        assert list(spec) == ["workload", "n", "k", "seed", "params"]

    def test_from_dict_clamps_k_to_n(self):
        assert InstanceSpec.from_dict({"n": 4, "k": 9}).k == 4

    @pytest.mark.parametrize(
        "bad",
        [
            {"workload": "nope", "n": 5, "k": 2},
            {"n": 1, "k": 1},
            {"n": 5, "k": 0},
            {"n": 5, "k": 2, "bogus": 1},
            {"n": 5, "k": 2, "params": "width"},
            "not-a-dict",
        ],
    )
    def test_from_dict_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            InstanceSpec.from_dict(bad)

    def test_materialize_is_process_stable(self):
        spec = InstanceSpec.from_dict(SPEC)
        first = spec.materialize()
        second = spec.materialize()
        assert [d.support for d in first] == [d.support for d in second]

    def test_manager_accepts_instance_spec_objects(self):
        manager = make_manager()
        sid = manager.create_session(InstanceSpec.from_dict(SPEC))
        assert manager.snapshot(sid)["spec"] == InstanceSpec.from_dict(
            SPEC
        ).to_dict()

    def test_deprecated_shims_warn_but_agree(self):
        with pytest.warns(DeprecationWarning, match="InstanceSpec"):
            normalized = normalize_spec(SPEC)
        assert normalized == InstanceSpec.from_dict(SPEC).to_dict()
        with pytest.warns(DeprecationWarning, match="materialize"):
            dists = materialize_instance(SPEC)
        reference = InstanceSpec.from_dict(SPEC).materialize()
        assert [d.support for d in dists] == [d.support for d in reference]


class TestLifecycle:
    def test_equal_specs_share_one_build(self):
        manager = make_manager(cache=TPOCache(capacity=4))
        manager.create_session(SPEC)
        manager.create_session(dict(SPEC))
        assert manager.cache.misses == 1
        assert manager.cache.hits == 1

    def test_different_seeds_build_separately(self):
        manager = make_manager(cache=TPOCache(capacity=4))
        manager.create_session(SPEC)
        manager.create_session({**SPEC, "seed": 6})
        assert manager.cache.misses == 2

    def test_duplicate_session_id_rejected(self):
        manager = make_manager()
        manager.create_session(SPEC, session_id="dup")
        with pytest.raises(ValueError):
            manager.create_session(SPEC, session_id="dup")

    def test_unknown_session_raises(self):
        manager = make_manager()
        with pytest.raises(UnknownSessionError):
            manager.next_question("ghost")

    def test_closed_session_rejects_answers(self):
        manager = make_manager()
        sid = manager.create_session(SPEC)
        manager.close_session(sid)
        with pytest.raises(ClosedSessionError):
            manager.submit_answer(sid, 0, 1, True)
        # Snapshots remain available after close.
        assert manager.snapshot(sid)["status"] == "closed"

    def test_noncanonical_answer_is_flipped(self):
        manager = make_manager()
        sid = manager.create_session(SPEC)
        question = manager.next_question(sid)
        # Report the same fact with the pair reversed.
        manager.submit_answer(sid, question.j, question.i, False)
        answer = manager.snapshot(sid)["snapshot"]["answers"][0]
        assert answer == [question.i, question.j, True, 1.0]


class TestCoalescing:
    def test_identical_states_share_one_ranking(self):
        manager = make_manager()
        a = manager.create_session(SPEC)
        b = manager.create_session(dict(SPEC))
        questions = manager.next_questions([a, b])
        assert questions[a] == questions[b]
        assert manager.rankings_computed == 1
        assert manager.rankings_coalesced == 1

    def test_memo_serves_repeat_lookups(self):
        manager = make_manager()
        sid = manager.create_session(SPEC)
        first = manager.next_question(sid)
        second = manager.next_question(sid)
        assert first == second
        assert manager.rankings_computed == 1
        assert manager.rankings_memo_hits == 1

    def test_diverged_states_rank_separately(self):
        manager = make_manager()
        a = manager.create_session(SPEC)
        b = manager.create_session(dict(SPEC))
        question = manager.next_question(a)
        manager.submit_answer(a, question.i, question.j, True)
        manager.next_questions([a, b])
        # b still at the initial state (memoized), a needs a new ranking.
        assert manager.rankings_computed == 2

    def test_memo_disabled_still_coalesces_within_a_call(self):
        manager = make_manager(ranking_memo_size=0)
        a = manager.create_session(SPEC)
        b = manager.create_session(dict(SPEC))
        manager.next_questions([a, b])
        assert manager.rankings_computed == 1
        manager.next_questions([a, b])
        assert manager.rankings_computed == 2  # nothing memoized

    def test_next_question_matches_interactive_session(self):
        # The service must ask exactly what a standalone session would.
        from repro.core.session import InteractiveSession

        manager = make_manager()
        sid = manager.create_session(SPEC)
        spec = InstanceSpec.from_dict(SPEC)
        distributions = spec.materialize()
        space = (
            GridBuilder(resolution=256)
            .build(distributions, spec.k)
            .to_space()
        )
        standalone = InteractiveSession(distributions, spec.k, space)
        assert manager.next_question(sid) == standalone.next_question()


class TestDurability:
    def test_events_are_logged_as_jsonl(self, tmp_path):
        log = tmp_path / "events.jsonl"
        manager = make_manager(log_path=log)
        sid = manager.create_session(SPEC, session_id="s1")
        crowd = make_crowd(SPEC)
        play(manager, sid, crowd, 2)
        manager.close_session(sid)
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds == ["create", "answer", "answer", "close"]

    def test_resume_restores_exact_state(self, tmp_path):
        log = tmp_path / "events.jsonl"
        manager = make_manager(log_path=log)
        sid = manager.create_session(SPEC, session_id="s1")
        crowd = make_crowd(SPEC)
        play(manager, sid, crowd, 3)
        expected = manager.snapshot(sid)
        expected_next = manager.next_question(sid)
        del manager

        resumed = SessionManager.resume(
            log, builder=GridBuilder(resolution=256)
        )
        snapshot = resumed.snapshot("s1")
        assert snapshot["snapshot"] == expected["snapshot"]
        assert snapshot["top_k"] == expected["top_k"]
        assert snapshot["orderings"] == expected["orderings"]
        assert resumed.next_question("s1") == expected_next

    def test_resume_completes_like_uninterrupted(self, tmp_path):
        crowd_a = make_crowd(SPEC)
        reference = make_manager()
        ref_sid = reference.create_session(SPEC, session_id="s1")
        play(reference, ref_sid, crowd_a, 50)

        log = tmp_path / "events.jsonl"
        crowd_b = make_crowd(SPEC)
        interrupted = make_manager(log_path=log)
        interrupted.create_session(SPEC, session_id="s1")
        play(interrupted, "s1", crowd_b, 2)
        del interrupted

        resumed = SessionManager.resume(
            log, builder=GridBuilder(resolution=256)
        )
        play(resumed, "s1", crowd_b, 48)
        assert (
            resumed.snapshot("s1")["snapshot"]
            == reference.snapshot(ref_sid)["snapshot"]
        )
        assert resumed.snapshot("s1")["top_k"] == reference.snapshot(
            ref_sid
        )["top_k"]

    def test_resume_tolerates_torn_tail(self, tmp_path):
        log = tmp_path / "events.jsonl"
        manager = make_manager(log_path=log)
        manager.create_session(SPEC, session_id="s1")
        crowd = make_crowd(SPEC)
        play(manager, "s1", crowd, 2)
        # Tear the final line (killed mid-write).
        text = log.read_text()
        log.write_text(text[:-15])
        resumed = SessionManager.resume(
            log, builder=GridBuilder(resolution=256)
        )
        assert resumed.snapshot("s1")["questions_asked"] == 1
        # Appending after the torn tail must heal it, not glue the new
        # event onto the torn line (which would lose both).
        play(resumed, "s1", crowd, 1)
        events = EventLog(log).load()
        assert [e["event"] for e in events] == ["create", "answer", "answer"]

    def test_resume_skips_orphaned_events(self, tmp_path):
        log = tmp_path / "events.jsonl"
        EventLog(log).append(
            {
                "event": "answer",
                "session_id": "ghost",
                "i": 0,
                "j": 1,
                "holds": True,
                "accuracy": 1.0,
            }
        )
        resumed = SessionManager.resume(log)
        assert resumed.session_ids(status=None) == []
        assert resumed.replay_skipped == 1

    def test_resumed_manager_keeps_logging(self, tmp_path):
        log = tmp_path / "events.jsonl"
        manager = make_manager(log_path=log)
        manager.create_session(SPEC, session_id="s1")
        del manager
        resumed = SessionManager.resume(
            log, builder=GridBuilder(resolution=256)
        )
        crowd = make_crowd(SPEC)
        play(resumed, "s1", crowd, 1)
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert [event["event"] for event in events] == ["create", "answer"]


class TestStats:
    def test_stats_shape(self):
        manager = make_manager()
        sid = manager.create_session(SPEC)
        manager.next_question(sid)
        stats = manager.stats()
        assert stats["sessions"] == {"active": 1}
        assert stats["cache"]["misses"] == 1
        assert stats["rankings"]["computed"] == 1
        assert stats["evaluations"] > 0
