"""Tests for the asyncio HTTP front end (raw sockets, no HTTP library)."""

import asyncio
import json

from repro.service.manager import SessionManager
from repro.service.server import start_server
from repro.tpo.builders import GridBuilder

SPEC = {
    "workload": "uniform",
    "n": 8,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


async def http(host, port, method, path, body=None):
    """Minimal HTTP/1.1 client: one request, one JSON response."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


def with_server(coro):
    """Run ``coro(host, port, manager)`` against a live server."""

    async def runner():
        manager = SessionManager(builder=GridBuilder(resolution=256))
        server = await start_server(manager, port=0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await coro(host, port, manager)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(runner())


class TestRoutes:
    def test_healthz(self):
        async def scenario(host, port, manager):
            assert await http(host, port, "GET", "/healthz") == (
                200,
                {"ok": True},
            )

        with_server(scenario)

    def test_session_lifecycle_over_http(self):
        async def scenario(host, port, manager):
            status, created = await http(
                host, port, "POST", "/sessions", {"spec": SPEC}
            )
            assert status == 200
            sid = created["session_id"]

            status, nxt = await http(
                host, port, "GET", f"/sessions/{sid}/next"
            )
            assert status == 200 and "question" in nxt
            question = nxt["question"]

            status, applied = await http(
                host,
                port,
                "POST",
                f"/sessions/{sid}/answers",
                {"i": question["i"], "j": question["j"], "holds": True},
            )
            assert status == 200
            assert applied["questions_asked"] == 1

            status, snapshot = await http(
                host, port, "GET", f"/sessions/{sid}"
            )
            assert status == 200
            assert snapshot["snapshot"]["answers"] == [
                [question["i"], question["j"], True, 1.0]
            ]
            assert len(snapshot["top_k"]) == 3

            status, closed = await http(
                host, port, "POST", f"/sessions/{sid}/close"
            )
            assert status == 200 and closed["closed"] is True
            status, _ = await http(host, port, "GET", f"/sessions/{sid}/next")
            assert status == 409

        with_server(scenario)

    def test_concurrent_next_requests_coalesce(self):
        async def scenario(host, port, manager):
            for sid in ("a", "b", "c"):
                await http(
                    host,
                    port,
                    "POST",
                    "/sessions",
                    {"spec": SPEC, "session_id": sid},
                )
            responses = await asyncio.gather(
                *(
                    http(host, port, "GET", f"/sessions/{sid}/next")
                    for sid in ("a", "b", "c")
                )
            )
            questions = {body["question"]["i"] for _, body in responses}
            assert len(questions) == 1  # identical states, identical pick
            # All three shared one ranking pass.
            assert manager.rankings_computed == 1
            assert (
                manager.rankings_coalesced + manager.rankings_memo_hits == 2
            )

        with_server(scenario)

    def test_errors_are_json_with_status(self):
        async def scenario(host, port, manager):
            status, body = await http(host, port, "GET", "/sessions/ghost")
            assert status == 404 and "error" in body
            status, body = await http(
                host, port, "POST", "/sessions", {"spec": {"workload": "nope"}}
            )
            assert status == 400 and "error" in body
            # Bad *generator* params surface as TypeError deep inside the
            # workload factory — still a client error, never a 500.
            status, body = await http(
                host,
                port,
                "POST",
                "/sessions",
                {"spec": {**SPEC, "params": {"bogus": 1}}},
            )
            assert status == 400 and "error" in body
            status, body = await http(host, port, "GET", "/nope")
            assert status == 404
            status, body = await http(host, port, "PUT", "/sessions")
            assert status == 405
            sid_status, created = await http(
                host, port, "POST", "/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            status, body = await http(
                host, port, "POST", f"/sessions/{sid}/answers", {"i": 0}
            )
            assert status == 400 and "holds" in body["error"]

        with_server(scenario)

    def test_unknown_method_on_known_route_is_405_with_allow(self):
        """Wrong method on a *known* route must never fall through to the
        generic 404 path: 405, an Allow header, and a JSON body."""

        async def scenario(host, port, manager):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                (
                    f"DELETE /sessions/some-id HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: 0\r\n\r\n"
                ).encode()
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body_raw = raw.partition(b"\r\n\r\n")
            assert b" 405 " in head.split(b"\r\n", 1)[0]
            header_lines = head.decode("latin-1").split("\r\n")[1:]
            headers = dict(
                line.split(": ", 1) for line in header_lines if ": " in line
            )
            assert headers["Allow"] == "GET"
            assert json.loads(body_raw)["error"] == (
                "DELETE not allowed on /sessions/{session_id}"
            )
            # The same request against a multi-method route lists them all.
            status, body = await http(host, port, "PATCH", "/sessions")
            assert status == 405
            assert "GET" in body["error"] or "not allowed" in body["error"]

        with_server(scenario)

    def test_malformed_json_body_is_400(self):
        async def scenario(host, port, manager):
            reader, writer = await asyncio.open_connection(host, port)
            payload = b"{not json"
            writer.write(
                (
                    f"POST /sessions HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]

        with_server(scenario)

    def test_stats_includes_batcher_counters(self):
        async def scenario(host, port, manager):
            await http(
                host,
                port,
                "POST",
                "/sessions",
                {"spec": SPEC, "session_id": "a"},
            )
            await http(host, port, "GET", "/sessions/a/next")
            status, stats = await http(host, port, "GET", "/stats")
            assert status == 200
            assert stats["next_requests"] == 1
            assert stats["cache"]["misses"] == 1
            status, listing = await http(host, port, "GET", "/sessions")
            assert listing["sessions"] == ["a"]

        with_server(scenario)

    def test_single_process_topology_in_meta_and_stats(self):
        # --workers 1 keeps the classic single-process server; its
        # topology advertises exactly that, with no shard field.
        async def scenario(host, port, manager):
            status, meta = await http(host, port, "GET", "/v1/meta")
            assert status == 200
            assert meta["topology"] == {
                "role": "single",
                "workers": 1,
                "strategy": "blake2b",
            }
            status, stats = await http(host, port, "GET", "/v1/stats")
            assert status == 200
            assert stats["topology"]["role"] == "single"
            # The typed response exposes the store block alongside the
            # historical flat cache keys.
            assert stats["store"] == stats["cache"]

        with_server(scenario)
