"""Tests for the two-tier TPO store and its cold-tier backends."""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.service.cache import TPOCache
from repro.service.store import (
    DiskNpzColdTier,
    MemoryColdTier,
    SharedMemoryColdTier,
    TwoTierStore,
)
from repro.tpo.builders import GridBuilder
from repro.workloads.synthetic import uniform_intervals


def make_instance(seed=1, n=8, k=3):
    distributions = uniform_intervals(n, width=0.3, rng=seed)
    builder = GridBuilder(resolution=256)
    return distributions, (lambda: builder.build(distributions, k))


def cold_tiers(tmp_path):
    return [
        MemoryColdTier(),
        DiskNpzColdTier(tmp_path / "cold"),
        SharedMemoryColdTier(prefix=f"repro-test-{os.getpid()}"),
    ]


class TestColdTiers:
    def test_roundtrip_parity_every_backend(self, tmp_path):
        distributions, build = make_instance()
        tree = build()
        expected = tree.to_space()
        for tier in cold_tiers(tmp_path):
            try:
                assert tier.get("k1", distributions) is None
                stored = tier.put("k1", tree)
                space = stored.to_space()
                np.testing.assert_array_equal(space.paths, expected.paths)
                np.testing.assert_allclose(
                    space.probabilities,
                    expected.probabilities,
                    atol=1e-12,
                )
                again = tier.get("k1", distributions)
                assert again is not None
                np.testing.assert_array_equal(
                    again.to_space().paths, expected.paths
                )
                assert tier.entry_count() == 1
                assert tier.stored_bytes() > 0
            finally:
                tier.close()

    def test_counters_and_stats_shape(self, tmp_path):
        distributions, build = make_instance()
        tree = build()
        for tier in cold_tiers(tmp_path):
            try:
                tier.get("k1", distributions)
                tier.put("k1", tree)
                tier.get("k1", distributions)
                stats = tier.stats()
                assert stats["hits"] == 1
                assert stats["misses"] == 1
                assert stats["puts"] == 1
                assert stats["torn"] == 0
                assert stats["hit_rate"] == 0.5
                assert set(stats) >= {
                    "backend",
                    "entries",
                    "bytes",
                    "hits",
                    "misses",
                    "torn",
                    "puts",
                    "hit_rate",
                }
            finally:
                tier.close()

    def test_torn_disk_payload_is_a_miss_and_discarded(self, tmp_path):
        distributions, build = make_instance()
        tier = DiskNpzColdTier(tmp_path / "cold")
        tier.put("k1", build())
        artifact = tmp_path / "cold" / "k1.npz"
        artifact.write_bytes(artifact.read_bytes()[:64])
        assert tier.get("k1", distributions) is None
        assert tier.torn == 1
        assert not artifact.exists()  # damaged payload dropped
        # The next put repairs the entry.
        tier.put("k1", build())
        assert tier.get("k1", distributions) is not None

    def test_invalid_keys_rejected(self, tmp_path):
        tier = DiskNpzColdTier(tmp_path / "cold")
        with pytest.raises(ValueError):
            tier.put("../escape", object())
        with pytest.raises(ValueError):
            tier.get("a/b", [])

    def test_disk_single_flight_lock(self, tmp_path):
        tier = DiskNpzColdTier(tmp_path / "cold", lock_timeout=30.0)
        assert tier.begin_build("k1") is True
        assert tier.begin_build("k1") is False  # someone else holds it
        tier.end_build("k1")
        assert tier.begin_build("k1") is True
        tier.end_build("k1")

    def test_disk_stale_lock_is_stolen(self, tmp_path):
        tier = DiskNpzColdTier(tmp_path / "cold", lock_timeout=0.05)
        assert tier.begin_build("k1") is True
        time.sleep(0.1)  # the "builder" dies without end_build
        assert tier.begin_build("k1") is True
        tier.end_build("k1")

    def test_disk_wait_for_returns_published_artifact(self, tmp_path):
        distributions, build = make_instance()
        tier = DiskNpzColdTier(tmp_path / "cold", poll_interval=0.01)
        assert tier.begin_build("k1") is True
        tier.put("k1", build())
        tier.end_build("k1")
        waited = tier.wait_for("k1", distributions, timeout=1.0)
        assert waited is not None

    def test_disk_wait_for_gives_up_without_artifact(self, tmp_path):
        distributions, _ = make_instance()
        tier = DiskNpzColdTier(tmp_path / "cold", poll_interval=0.01)
        assert tier.wait_for("k1", distributions, timeout=0.05) is None

    def test_shared_memory_close_unlinks_owned_segments(self):
        distributions, build = make_instance()
        prefix = f"repro-test-close-{os.getpid()}"
        tier = SharedMemoryColdTier(prefix=prefix)
        tier.put("k1", build())
        assert tier.get("k1", distributions) is not None
        tier.close()
        fresh = SharedMemoryColdTier(prefix=prefix)
        try:
            assert fresh.get("k1", distributions) is None
        finally:
            fresh.close()


def _worker_reads_shared_tree(config):
    """Cross-process read of a disk cold tier (module-level for pickling)."""
    distributions, _ = make_instance()
    tier = DiskNpzColdTier(config["path"])
    tree = tier.get("k1", distributions)
    return None if tree is None else tree.to_space().paths.tolist()


class TestCrossProcess:
    def test_disk_tier_shared_across_processes(self, tmp_path):
        distributions, build = make_instance()
        tier = DiskNpzColdTier(tmp_path / "cold")
        expected = tier.put("k1", build()).to_space().paths.tolist()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(1) as pool:
            seen = pool.map(
                _worker_reads_shared_tree,
                [{"path": str(tmp_path / "cold")}],
            )[0]
        assert seen == expected


class TestTwoTierStore:
    def test_build_then_hot_then_cold(self, tmp_path):
        distributions, build = make_instance()
        store = TwoTierStore(
            hot=TPOCache(capacity=1), cold=DiskNpzColdTier(tmp_path)
        )
        first = store.get_space("k1", distributions, build)
        assert store.builds == 1
        # Hot hit: the exact shared object comes back.
        assert store.get_space("k1", distributions, build) is first
        assert store.hot.hits == 1
        # Evict from hot, hit cold.
        other_dists, other_build = make_instance(seed=2)
        store.get_space("k2", other_dists, other_build)
        cold_served = store.get_space("k1", distributions, build)
        assert store.cold_hits == 1
        assert store.builds == 2  # only k1 and k2, never a rebuild of k1
        np.testing.assert_array_equal(cold_served.paths, first.paths)

    def test_space_matches_direct_build(self, tmp_path):
        distributions, build = make_instance()
        direct = build().to_space()
        store = TwoTierStore(cold=DiskNpzColdTier(tmp_path))
        space = store.get_space("k1", distributions, build)
        np.testing.assert_array_equal(space.paths, direct.paths)
        np.testing.assert_allclose(
            space.probabilities, direct.probabilities, atol=1e-12
        )

    def test_second_store_shares_the_cold_tier(self, tmp_path):
        distributions, build = make_instance()
        a = TwoTierStore(cold=DiskNpzColdTier(tmp_path))
        a.get_space("k1", distributions, build)
        b = TwoTierStore(cold=DiskNpzColdTier(tmp_path))
        b.get_space("k1", distributions, build)
        assert a.builds == 1
        assert b.builds == 0
        assert b.cold_hits == 1
        assert b.cold_hit_rate == 1.0

    def test_stats_shape_and_compat_aliases(self, tmp_path):
        distributions, build = make_instance()
        store = TwoTierStore(
            hot=TPOCache(capacity=4), cold=MemoryColdTier()
        )
        store.get_space("k1", distributions, build)
        store.get_space("k1", distributions, build)
        stats = store.stats()
        assert stats["tiers"] == 2
        assert stats["builds"] == 1
        assert stats["hot"]["hits"] == 1
        assert stats["cold"]["backend"] == "memory"
        # Flat TPOCache-shaped aliases for existing dashboards.
        for alias in ("hits", "misses", "entries", "capacity"):
            assert alias in stats
        assert stats["hits"] == stats["hot"]["hits"]

    def test_hit_rate_counts_both_tiers(self, tmp_path):
        distributions, build = make_instance()
        store = TwoTierStore(
            hot=TPOCache(capacity=1), cold=MemoryColdTier()
        )
        store.get_space("k1", distributions, build)  # build
        store.get_space("k1", distributions, build)  # hot
        assert store.hit_rate == 0.5
        assert store.cold_hit_rate == 0.0

    def test_clear_drops_hot_but_not_cold(self, tmp_path):
        distributions, build = make_instance()
        store = TwoTierStore(cold=MemoryColdTier())
        store.get_space("k1", distributions, build)
        store.clear()
        store.get_space("k1", distributions, build)
        assert store.builds == 1
        assert store.cold_hits == 1

    def test_fallback_build_when_elected_builder_stalls(self, tmp_path):
        distributions, build = make_instance()
        tier = DiskNpzColdTier(
            tmp_path, lock_timeout=60.0, poll_interval=0.01
        )
        # Simulate a builder elsewhere that never publishes.
        assert tier.begin_build("k1") is True
        store = TwoTierStore(cold=tier, build_wait=0.05)
        space = store.get_space("k1", distributions, build)
        assert space is not None
        assert store.builds == 1  # fell back to a local build
        tier.end_build("k1")

    def test_manager_accepts_two_tier_store(self, tmp_path):
        from repro.service.manager import SessionManager

        store = TwoTierStore(cold=DiskNpzColdTier(tmp_path))
        manager = SessionManager(
            cache=store, builder=GridBuilder(resolution=256)
        )
        sid = manager.create_session(
            {
                "workload": "uniform",
                "n": 6,
                "k": 2,
                "seed": 7,
                "params": {"width": 0.3},
            }
        )
        assert manager.next_question(sid) is not None
        assert manager.stats()["cache"]["tiers"] == 2
