"""Typed schema tests for the versioned ``/v1`` wire protocol.

Every ``/v1`` endpoint gets a response-shape assertion, and every error
status the protocol defines (400, 404, 405, 409, 413) gets at least one
error-envelope case: ``{"error": {"code", "message", "detail"?}}`` with
the correct machine-readable code.
"""

import asyncio
import json

import pytest

from repro import __version__
from repro.api import InstanceSpec, all_registries
from repro.service.manager import SessionManager
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    AnswerRequest,
    CreateSessionRequest,
    ErrorEnvelope,
    ProtocolError,
)
from repro.service.server import ROUTES, start_server
from repro.tpo.builders import GridBuilder

SPEC = {
    "workload": "uniform",
    "n": 8,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


async def http(host, port, method, path, body=None, content_length=None):
    """One-request HTTP/1.1 client returning (status, headers, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    length = content_length if content_length is not None else len(payload)
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {length}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body_raw = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_raw)


def with_server(coro):
    """Run ``coro(host, port, manager)`` against a live server."""

    async def runner():
        manager = SessionManager(builder=GridBuilder(resolution=256))
        server = await start_server(manager, port=0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await coro(host, port, manager)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(runner())


def assert_envelope(body, code):
    """The uniform v1 error shape with the expected machine code."""
    assert set(body) == {"error"}
    error = body["error"]
    assert error["code"] == code
    assert isinstance(error["message"], str) and error["message"]
    if "detail" in error:
        assert isinstance(error["detail"], dict)
    return error


class TestRequestModels:
    def test_create_session_request_parses(self):
        request = CreateSessionRequest.from_body(
            {"spec": SPEC, "session_id": "a"}
        )
        assert request.spec == InstanceSpec.from_dict(SPEC)
        assert request.session_id == "a"

    @pytest.mark.parametrize(
        "body",
        [
            [],
            {},
            {"spec": SPEC, "bogus": 1},
            {"spec": SPEC, "session_id": 7},
        ],
    )
    def test_create_session_request_rejects(self, body):
        with pytest.raises(ProtocolError):
            CreateSessionRequest.from_body(body)

    def test_answer_request_parses_and_defaults(self):
        request = AnswerRequest.from_body({"i": 1, "j": 2, "holds": True})
        assert (request.i, request.j, request.holds) == (1, 2, True)
        assert request.accuracy == 1.0

    @pytest.mark.parametrize(
        "body", [{"i": 0}, {"i": 0, "j": 1}, {"i": "x", "j": 1, "holds": 1}]
    )
    def test_answer_request_rejects(self, body):
        with pytest.raises(ProtocolError):
            AnswerRequest.from_body(body)

    def test_answer_request_rejects_unknown_fields_when_strict(self):
        # A misspelled "accuracy" must not silently apply a full-weight
        # (hard-pruning) answer on the strict /v1 surface.
        body = {"i": 0, "j": 1, "holds": True, "acuracy": 0.7}
        with pytest.raises(ProtocolError, match="acuracy"):
            AnswerRequest.from_body(body)
        lenient = AnswerRequest.from_body(body, strict=False)
        assert lenient.accuracy == 1.0  # legacy routes keep old behavior

    def test_error_envelope_shapes(self):
        envelope = ErrorEnvelope(404, "gone", detail={"x": 1})
        assert envelope.to_payload() == {
            "error": {"code": "not_found", "message": "gone", "detail": {"x": 1}}
        }
        assert envelope.to_legacy_payload() == {"error": "gone"}

    def test_every_error_status_has_a_code(self):
        assert set(ERROR_CODES) == {400, 404, 405, 409, 413, 500, 502, 503}


class TestTopologyModels:
    def test_topology_default_is_single_process(self):
        from repro.service.protocol import TopologyInfo

        assert TopologyInfo().to_payload() == {
            "role": "single",
            "workers": 1,
            "strategy": "blake2b",
        }

    def test_worker_topology_includes_shard(self):
        from repro.service.protocol import TopologyInfo

        payload = TopologyInfo(
            role="worker", workers=4, shard=2
        ).to_payload()
        assert payload["role"] == "worker"
        assert payload["shard"] == 2

    def test_stats_response_keeps_flat_keys_and_adds_store(self):
        from repro.service.protocol import StatsResponse

        manager_stats = {
            "sessions": {"active": 2, "closed": 1},
            "cache": {"hits": 3, "misses": 1, "hit_rate": 0.75},
            "rankings": {"computed": 5, "memo_hits": 0, "coalesced": 0},
            "evaluations": 9,
            "contradictions": 0,
            "replay_skipped": 0,
        }
        payload = StatsResponse.from_manager_stats(
            manager_stats, next_batches=2, next_requests=4
        ).to_payload()
        # Historical flat shape is intact…
        assert payload["sessions"] == manager_stats["sessions"]
        assert payload["cache"] == manager_stats["cache"]
        assert payload["next_batches"] == 2
        assert payload["next_requests"] == 4
        # …and the typed additions ride alongside.
        assert payload["store"] == manager_stats["cache"]
        assert payload["topology"]["role"] == "single"

    def test_cluster_stats_aggregates_workers(self):
        from repro.service.protocol import (
            ClusterStatsResponse,
            TopologyInfo,
        )

        def worker(shard, hot_hits, cold_hits, builds):
            return {
                "shard": shard,
                "sessions": {"active": 2},
                "next_batches": 1,
                "next_requests": 2,
                "cache": {
                    "hot": {"hits": hot_hits, "misses": 1},
                    "cold": {"bytes": 100},
                    "cold_hits": cold_hits,
                    "cold_waited": 0,
                    "builds": builds,
                },
            }

        payload = ClusterStatsResponse(
            topology=TopologyInfo(role="router", workers=2),
            workers=[worker(0, 3, 0, 1), worker(1, 2, 1, 0)],
        ).to_payload()
        assert payload["sessions"] == {"active": 4}
        assert payload["next_requests"] == 4
        store = payload["store"]
        assert store["hot_hits"] == 5
        assert store["builds"] == 1
        assert store["cold_hits"] == 1
        assert store["cold_hit_rate"] == 0.5
        assert store["bytes"] == 200
        assert [w["shard"] for w in payload["workers"]] == [0, 1]


class TestV1Endpoints:
    def test_healthz_schema(self):
        async def scenario(host, port, manager):
            status, _, body = await http(host, port, "GET", "/v1/healthz")
            assert (status, body) == (200, {"ok": True})

        with_server(scenario)

    def test_meta_enumerates_plugins_and_endpoints(self):
        async def scenario(host, port, manager):
            status, headers, body = await http(host, port, "GET", "/v1/meta")
            assert status == 200
            assert "deprecation" not in headers
            assert body["protocol"] == PROTOCOL_VERSION
            assert body["version"] == __version__
            assert set(body["plugins"]) == set(all_registries())
            assert body["plugins"]["measures"] == ["H", "Hw", "MPO", "ORA"]
            assert body["plugins"]["evals"] == [
                "calibration", "golden", "regret",
            ]
            assert "RPL010" in body["plugins"]["lint_rules"]
            assert "memory" in body["plugins"]["stores"]
            listed = {(e["method"], e["path"]) for e in body["endpoints"]}
            assert ("GET", "/v1/meta") in listed
            assert ("POST", "/v1/sessions/{session_id}/answers") in listed
            assert len(listed) == sum(len(r.handlers) for r in ROUTES)

        with_server(scenario)

    def test_session_lifecycle_schemas(self):
        async def scenario(host, port, manager):
            status, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            assert status == 200 and set(created) == {"session_id"}
            sid = created["session_id"]

            status, _, listing = await http(host, port, "GET", "/v1/sessions")
            assert status == 200 and listing == {"sessions": [sid]}

            status, _, nxt = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            assert status == 200
            assert set(nxt) == {"session_id", "question"}
            assert set(nxt["question"]) == {"i", "j"}

            status, _, applied = await http(
                host,
                port,
                "POST",
                f"/v1/sessions/{sid}/answers",
                {**nxt["question"], "holds": True},
            )
            assert status == 200
            assert set(applied) == {
                "session_id",
                "questions_asked",
                "orderings",
                "settled",
            }
            assert applied["questions_asked"] == 1

            status, _, snapshot = await http(
                host, port, "GET", f"/v1/sessions/{sid}"
            )
            assert status == 200
            assert set(snapshot) == {
                "session_id",
                "status",
                "spec",
                "tpo_key",
                "snapshot",
                "questions_asked",
                "orderings",
                "settled",
                "top_k",
            }
            assert snapshot["spec"] == InstanceSpec.from_dict(SPEC).to_dict()

            status, _, closed = await http(
                host, port, "POST", f"/v1/sessions/{sid}/close"
            )
            assert status == 200
            assert closed == {"session_id": sid, "closed": True}

        with_server(scenario)

    def test_stats_includes_batcher_counters(self):
        async def scenario(host, port, manager):
            await http(host, port, "POST", "/v1/sessions", {"spec": SPEC})
            status, _, stats = await http(host, port, "GET", "/v1/stats")
            assert status == 200
            assert {"sessions", "cache", "rankings"} <= set(stats)
            assert stats["next_requests"] == 0

        with_server(scenario)


class TestV1ErrorEnvelopes:
    def test_400_bad_request_cases(self):
        async def scenario(host, port, manager):
            # Missing spec field.
            status, _, body = await http(
                host, port, "POST", "/v1/sessions", {"n": 4}
            )
            assert status == 400
            assert_envelope(body, "bad_request")
            # Unknown workload gets a suggestion in the message.
            status, _, body = await http(
                host,
                port,
                "POST",
                "/v1/sessions",
                {"spec": {**SPEC, "workload": "unifrm"}},
            )
            assert status == 400
            error = assert_envelope(body, "bad_request")
            assert "did you mean 'uniform'" in error["message"]
            # Bad generator params (TypeError deep inside the factory).
            status, _, body = await http(
                host,
                port,
                "POST",
                "/v1/sessions",
                {"spec": {**SPEC, "params": {"bogus": 1}}},
            )
            assert status == 400
            assert_envelope(body, "bad_request")
            # Missing answer fields.
            status, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            status, _, body = await http(
                host, port, "POST", f"/v1/sessions/{sid}/answers", {"i": 0}
            )
            assert status == 400
            error = assert_envelope(body, "bad_request")
            assert "holds" in error["message"]

        with_server(scenario)

    def test_404_unknown_session_and_route(self):
        async def scenario(host, port, manager):
            status, _, body = await http(
                host, port, "GET", "/v1/sessions/ghost"
            )
            assert status == 404
            assert_envelope(body, "not_found")
            status, _, body = await http(host, port, "GET", "/v1/nope")
            assert status == 404
            assert_envelope(body, "not_found")

        with_server(scenario)

    def test_405_includes_allow_header_and_detail(self):
        async def scenario(host, port, manager):
            status, headers, body = await http(
                host, port, "DELETE", "/v1/sessions"
            )
            assert status == 405
            assert headers["allow"] == "GET, POST"
            error = assert_envelope(body, "method_not_allowed")
            assert error["detail"]["allow"] == ["GET", "POST"]
            status, headers, body = await http(
                host, port, "POST", "/v1/healthz"
            )
            assert status == 405
            assert headers["allow"] == "GET"
            assert_envelope(body, "method_not_allowed")

        with_server(scenario)

    def test_409_closed_session(self):
        async def scenario(host, port, manager):
            _, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            await http(host, port, "POST", f"/v1/sessions/{sid}/close")
            status, _, body = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            assert status == 409
            assert_envelope(body, "conflict")
            status, _, body = await http(
                host,
                port,
                "POST",
                f"/v1/sessions/{sid}/answers",
                {"i": 0, "j": 1, "holds": True},
            )
            assert status == 409
            assert_envelope(body, "conflict")

        with_server(scenario)

    def test_413_oversized_body(self):
        async def scenario(host, port, manager):
            # Claim a giant body; the server must refuse before reading it.
            status, _, body = await http(
                host,
                port,
                "POST",
                "/v1/sessions",
                {"spec": SPEC},
                content_length=(1 << 20) + 1,
            )
            assert status == 413
            error = assert_envelope(body, "payload_too_large")
            assert error["detail"]["max_bytes"] == 1 << 20

        with_server(scenario)


class TestLegacyAliases:
    def test_unversioned_routes_keep_flat_errors_and_warn(self):
        async def scenario(host, port, manager):
            status, headers, body = await http(
                host, port, "GET", "/sessions/ghost"
            )
            assert status == 404
            assert body == {"error": "no session 'ghost'"}
            assert headers.get("deprecation") == "true"

        with_server(scenario)

    def test_body_parse_errors_stay_flat_on_legacy_paths(self):
        """Errors raised while reading the body (bad JSON, oversized)
        must still render in the legacy flat shape for legacy paths."""

        async def scenario(host, port, manager):
            reader, writer = await asyncio.open_connection(host, port)
            payload = b"{not json"
            writer.write(
                (
                    f"POST /sessions HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body_raw = raw.partition(b"\r\n\r\n")
            assert b" 400 " in head.split(b"\r\n", 1)[0]
            body = json.loads(body_raw)
            assert body == {"error": "request body is not valid JSON"}
            assert b"Deprecation: true" in head
            # Oversized legacy body: flat 413.
            status, headers, body = await http(
                host,
                port,
                "POST",
                "/sessions",
                {"spec": SPEC},
                content_length=(1 << 20) + 1,
            )
            assert status == 413
            assert body == {"error": "request body too large"}

        with_server(scenario)

    def test_v1_answers_reject_unknown_fields_legacy_does_not(self):
        async def scenario(host, port, manager):
            _, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            _, _, nxt = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            answer = {**nxt["question"], "holds": True, "acuracy": 0.7}
            status, _, body = await http(
                host, port, "POST", f"/v1/sessions/{sid}/answers", answer
            )
            assert status == 400
            assert "acuracy" in assert_envelope(body, "bad_request")[
                "message"
            ]
            status, _, body = await http(
                host, port, "POST", f"/sessions/{sid}/answers", answer
            )
            assert status == 200 and body["questions_asked"] == 1

        with_server(scenario)
