"""Smoke tests for the service benchmark (tiny sizes, no perf gates)."""

import json

from repro.service.bench import (
    SessionCrowd,
    create_sessions,
    drive_sessions,
    instance_specs,
    make_crowds,
    run,
    run_multi,
    session_results,
)
from repro.service.cache import TPOCache
from repro.service.manager import SessionManager
from repro.tpo.builders import GridBuilder


class TestBenchPieces:
    def test_instance_specs_are_distinct(self):
        specs = instance_specs(3, n=8, k=3, width=0.3)
        assert len({spec["seed"] for spec in specs}) == 3

    def test_drive_sessions_respects_budget(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        crowds = make_crowds(specs)
        manager = SessionManager(builder=GridBuilder(resolution=256))
        plan = create_sessions(manager, specs, 4)
        drive_sessions(manager, plan, crowds, answers_per_session=2)
        results = session_results(manager, plan)
        assert all(r["questions_asked"] <= 2 for r in results.values())

    def test_stop_after_interrupts_mid_run(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        crowds = make_crowds(specs)
        manager = SessionManager(builder=GridBuilder(resolution=256))
        plan = create_sessions(manager, specs, 4)
        submitted = drive_sessions(
            manager, plan, crowds, answers_per_session=5, stop_after=3
        )
        assert submitted == 3

    def test_cache_sharing_across_the_plan(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        manager = SessionManager(
            cache=TPOCache(capacity=4), builder=GridBuilder(resolution=256)
        )
        create_sessions(manager, specs, 8)
        assert manager.cache.misses == 2
        assert manager.cache.hits == 6

    def test_session_crowd_is_a_pure_function(self):
        from repro.service.bench import _session_crowds

        specs = instance_specs(1, n=8, k=3, width=0.3)
        crowd = _session_crowds(specs, [("s0000", 0)])[0]
        assert isinstance(crowd, SessionCrowd)

        class Question:
            i, j = 0, 1

        first = crowd.ask(Question())
        again = crowd.ask(Question())
        assert (first.holds, first.accuracy) == (again.holds, again.accuracy)
        assert first.accuracy < 1.0  # reweight path, never a hard prune

    def test_session_crowds_diverge_between_sessions(self):
        from repro.service.bench import _session_crowds

        specs = instance_specs(1, n=8, k=3, width=0.3)
        plan = [(f"s{index:04d}", 0) for index in range(8)]
        crowds = _session_crowds(specs, plan)

        def transcript(crowd):
            answers = []
            for i in range(8):
                for j in range(i + 1, 8):
                    question = type("Q", (), {"i": i, "j": j})()
                    answers.append(crowd.ask(question).holds)
            return tuple(answers)

        assert len({transcript(crowd) for crowd in crowds}) > 1


class TestBenchRun:
    def test_smoke_run_passes_and_writes_artifact(self, tmp_path):
        artifact_path = tmp_path / "BENCH_service.json"
        failures = run(smoke=True, json_path=str(artifact_path))
        assert failures == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["benchmark"] == "bench_service"
        assert artifact["resume"]["identical"] is True
        assert artifact["cached"]["cache"]["hits"] > 0
        # Provenance stamps for the perf trajectory.
        assert "git_sha" in artifact
        assert artifact["date"].endswith("+00:00")
        assert artifact["gates"]["gated"] is False

    def test_multi_smoke_run_passes_and_writes_artifact(self, tmp_path):
        artifact_path = tmp_path / "BENCH_service_multi.json"
        failures = run_multi(smoke=True, json_path=str(artifact_path))
        assert failures == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["benchmark"] == "bench_service_multi"
        assert artifact["config"]["workers"] == 2  # smoke clamps the fleet
        assert artifact["resume"]["identical"] is True
        assert artifact["cold_hit_rate"] > 0
        assert len(artifact["fleet"]["workers"]) == 2
        assert "git_sha" in artifact
        assert artifact["gates"]["gated"] is False
