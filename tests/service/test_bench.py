"""Smoke tests for the service benchmark (tiny sizes, no perf gates)."""

import json

from repro.service.bench import (
    create_sessions,
    drive_sessions,
    instance_specs,
    make_crowds,
    run,
    session_results,
)
from repro.service.cache import TPOCache
from repro.service.manager import SessionManager
from repro.tpo.builders import GridBuilder


class TestBenchPieces:
    def test_instance_specs_are_distinct(self):
        specs = instance_specs(3, n=8, k=3, width=0.3)
        assert len({spec["seed"] for spec in specs}) == 3

    def test_drive_sessions_respects_budget(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        crowds = make_crowds(specs)
        manager = SessionManager(builder=GridBuilder(resolution=256))
        plan = create_sessions(manager, specs, 4)
        drive_sessions(manager, plan, crowds, answers_per_session=2)
        results = session_results(manager, plan)
        assert all(r["questions_asked"] <= 2 for r in results.values())

    def test_stop_after_interrupts_mid_run(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        crowds = make_crowds(specs)
        manager = SessionManager(builder=GridBuilder(resolution=256))
        plan = create_sessions(manager, specs, 4)
        submitted = drive_sessions(
            manager, plan, crowds, answers_per_session=5, stop_after=3
        )
        assert submitted == 3

    def test_cache_sharing_across_the_plan(self):
        specs = instance_specs(2, n=8, k=3, width=0.3)
        manager = SessionManager(
            cache=TPOCache(capacity=4), builder=GridBuilder(resolution=256)
        )
        create_sessions(manager, specs, 8)
        assert manager.cache.misses == 2
        assert manager.cache.hits == 6


class TestBenchRun:
    def test_smoke_run_passes_and_writes_artifact(self, tmp_path):
        artifact_path = tmp_path / "BENCH_service.json"
        failures = run(smoke=True, json_path=str(artifact_path))
        assert failures == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["benchmark"] == "bench_service"
        assert artifact["resume"]["identical"] is True
        assert artifact["cached"]["cache"]["hits"] > 0
        # Provenance stamps for the perf trajectory.
        assert "git_sha" in artifact
        assert artifact["date"].endswith("+00:00")
        assert artifact["gates"]["gated"] is False
