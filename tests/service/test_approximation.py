"""Typed approximation metadata on the ``/v1`` surface.

A beam-built manager must surface its certified lost-mass bound as a
typed ``approximation`` block on next-question and stats responses; an
exact manager must emit byte-identical responses to the pre-beam
protocol — no new keys at all.  ``/v1/meta`` advertises which engines
accept beam parameters so clients can negotiate.
"""

import asyncio
import json

import pytest

from repro.service.manager import SessionManager
from repro.service.protocol import ApproximationInfo
from repro.service.server import start_server
from repro.tpo.builders import ENGINES, GridBuilder

SPEC = {
    "workload": "uniform",
    "n": 8,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


async def http(host, port, method, path, body=None):
    """One-request HTTP/1.1 client returning (status, headers, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body_raw = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_raw)


def run_with_manager(builder, coro):
    async def runner():
        manager = SessionManager(builder=builder)
        server = await start_server(manager, port=0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await coro(host, port, manager)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(runner())


class TestApproximationInfoModel:
    def test_from_dict_none_is_none(self):
        assert ApproximationInfo.from_dict(None) is None

    def test_payload_round_trip(self):
        info = ApproximationInfo(
            lost_mass=0.03, engine_key="abc", value_interval=[0.1, 0.4]
        )
        payload = info.to_payload()
        assert payload == {
            "lost_mass": 0.03,
            "value_interval": [0.1, 0.4],
            "engine_key": "abc",
        }
        assert ApproximationInfo.from_dict(payload) == info

    def test_interval_is_optional(self):
        info = ApproximationInfo(lost_mass=0.03, engine_key="abc")
        assert info.to_payload()["value_interval"] is None


class TestMetaAdvertisesBeamEngines:
    def test_beam_engines_lists_registry(self):
        async def scenario(host, port, manager):
            status, _, body = await http(host, port, "GET", "/v1/meta")
            assert status == 200
            assert body["beam_engines"] == sorted(ENGINES)
            assert body["beam_engines"] == body["plugins"]["engines"]

        run_with_manager(GridBuilder(resolution=256), scenario)


class TestExactManagerEmitsNoApproximation:
    def test_next_and_stats_have_no_new_keys(self):
        async def scenario(host, port, manager):
            _, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": SPEC}
            )
            sid = created["session_id"]
            status, _, nxt = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            assert status == 200
            assert set(nxt) == {"session_id", "question"}
            status, _, stats = await http(host, port, "GET", "/v1/stats")
            assert status == 200
            assert "approximation" not in stats
            assert manager.approximation(sid) is None

        run_with_manager(GridBuilder(resolution=256), scenario)


class TestBeamManagerReportsCertifiedLoss:
    BEAM_SPEC = {**SPEC, "params": {"width": 0.6}}

    def test_next_question_carries_approximation(self):
        async def scenario(host, port, manager):
            _, _, created = await http(
                host, port, "POST", "/v1/sessions", {"spec": self.BEAM_SPEC}
            )
            sid = created["session_id"]
            status, _, nxt = await http(
                host, port, "GET", f"/v1/sessions/{sid}/next"
            )
            assert status == 200
            assert set(nxt) == {"session_id", "question", "approximation"}
            approx = nxt["approximation"]
            assert set(approx) == {
                "lost_mass",
                "value_interval",
                "engine_key",
            }
            assert 0.0 < approx["lost_mass"] <= 0.05 * SPEC["k"]
            assert approx["engine_key"] == manager.engine_key
            interval = approx["value_interval"]
            if interval is not None:
                lo, hi = interval
                assert lo <= hi

            status, _, stats = await http(host, port, "GET", "/v1/stats")
            assert status == 200
            assert stats["approximation"]["lost_mass"] == pytest.approx(
                approx["lost_mass"]
            )
            assert stats["approximation"]["engine_key"] == manager.engine_key

        run_with_manager(
            GridBuilder(resolution=256, beam_epsilon=0.05), scenario
        )
