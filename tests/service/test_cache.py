"""Tests for the content-addressed TPO cache."""

import numpy as np
import pytest

from repro.service.cache import TPOCache, instance_key
from repro.tpo.builders import GridBuilder
from repro.workloads.synthetic import uniform_intervals


def make_instance(seed=1, n=8, k=3):
    distributions = uniform_intervals(n, width=0.3, rng=seed)
    builder = GridBuilder(resolution=256)
    return distributions, (lambda: builder.build(distributions, k))


class TestInstanceKey:
    def test_key_is_order_insensitive(self):
        a = instance_key({"n": 5, "workload": "uniform"})
        b = instance_key({"workload": "uniform", "n": 5})
        assert a == b

    def test_key_distinguishes_content(self):
        assert instance_key({"n": 5}) != instance_key({"n": 6})

    def test_key_is_stable_hex(self):
        key = instance_key({"n": 5})
        assert len(key) == 32
        int(key, 16)  # valid hex


class TestTPOCache:
    def test_second_lookup_hits_and_shares_the_space(self):
        cache = TPOCache(capacity=4)
        distributions, build = make_instance()
        first = cache.get_space("k1", distributions, build)
        second = cache.get_space("k1", distributions, build)
        assert second is first  # shared immutable initial space
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_roundtrip_preserves_the_built_space(self):
        # The cache round-trips trees through tpo.serialize; the cached
        # space must equal a direct build.
        distributions, build = make_instance()
        direct = build().to_space()
        cached = TPOCache(capacity=2).get_space("k", distributions, build)
        np.testing.assert_array_equal(cached.paths, direct.paths)
        np.testing.assert_allclose(
            cached.probabilities, direct.probabilities, atol=1e-12
        )

    def test_lru_eviction_beyond_capacity(self):
        cache = TPOCache(capacity=2)
        distributions, build = make_instance()
        cache.get_space("a", distributions, build)
        cache.get_space("b", distributions, build)
        cache.get_space("a", distributions, build)  # refresh a
        cache.get_space("c", distributions, build)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_capacity_zero_disables_storage(self):
        cache = TPOCache(capacity=0)
        distributions, build = make_instance()
        cache.get_space("a", distributions, build)
        cache.get_space("a", distributions, build)
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 0

    def test_capacity_zero_is_pure_pass_through(self):
        # Regression: a disabled cache must never churn the eviction
        # counter (insert-then-immediately-evict) nor store the entry.
        cache = TPOCache(capacity=0)
        assert cache.enabled is False
        distributions, build = make_instance()
        space = build().to_space()
        assert cache.lookup("a") is None
        cache.insert("a", space)
        assert cache.lookup("a") is None
        assert len(cache) == 0
        assert cache.evictions == 0
        stats = cache.stats()
        assert stats["enabled"] is False
        assert stats["capacity"] == 0

    def test_enabled_reported_in_stats(self):
        assert TPOCache(capacity=2).stats()["enabled"] is True
        assert TPOCache(capacity=2).enabled is True

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TPOCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = TPOCache(capacity=2)
        distributions, build = make_instance()
        cache.get_space("a", distributions, build)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
