"""Regression tests for the non-blocking event-log path (lint rule RPL004).

The asyncio server must never ``open()`` the event log on the loop thread:
mutating handlers append to a :class:`BufferedEventLog` (pure in-memory)
and await one flush hop through a single-thread executor before
responding.  These tests pin both halves of that contract — the loop
never blocks, and a 200 response still means the event is on disk.
"""

import asyncio
import json
import threading

from repro.service.manager import (
    BufferedEventLog,
    EventLog,
    SessionManager,
)
from repro.service.server import start_server
from repro.tpo.builders import GridBuilder

SPEC = {
    "workload": "uniform",
    "n": 8,
    "k": 3,
    "seed": 5,
    "params": {"width": 0.3},
}


def make_manager(**kwargs):
    kwargs.setdefault("builder", GridBuilder(resolution=256))
    return SessionManager(**kwargs)


class TestBufferedEventLog:
    def test_append_touches_no_disk_until_flush(self, tmp_path):
        log = BufferedEventLog(tmp_path / "events.jsonl")
        log.append({"event": "create", "session_id": "a"})
        log.append({"event": "close", "session_id": "a"})
        assert not log.path.exists()
        assert log.pending == 2
        assert log.flush() == 2
        assert log.pending == 0
        assert [e["event"] for e in log.load()] == ["create", "close"]

    def test_flush_preserves_append_order(self, tmp_path):
        log = BufferedEventLog(tmp_path / "events.jsonl")
        for index in range(20):
            log.append({"event": "answer", "n": index})
        log.flush()
        assert [e["n"] for e in log.load()] == list(range(20))

    def test_flush_on_empty_buffer_is_noop(self, tmp_path):
        log = BufferedEventLog(tmp_path / "events.jsonl")
        assert log.flush() == 0
        assert not log.path.exists()

    def test_flush_heals_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "create", "session_id": "a"}\n{"event": ')
        log = BufferedEventLog(path)
        log.append({"event": "close", "session_id": "a"})
        log.flush()
        assert [e["event"] for e in log.load()] == ["create", "close"]

    def test_concurrent_appends_and_flushes(self, tmp_path):
        """Threaded appenders + flushers lose and duplicate nothing."""
        log = BufferedEventLog(tmp_path / "events.jsonl")
        per_thread = 50

        def appender(worker):
            for index in range(per_thread):
                log.append({"event": "answer", "w": worker, "n": index})

        def flusher():
            for _ in range(10):
                log.flush()

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(4)
        ] + [threading.Thread(target=flusher) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.flush()
        events = log.load()
        assert len(events) == 4 * per_thread
        for worker in range(4):
            ordered = [e["n"] for e in events if e["w"] == worker]
            assert ordered == list(range(per_thread))

    def test_eager_log_flush_is_noop(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.append({"event": "create", "session_id": "a"})
        # Eager appends are durable immediately; flush has nothing to do.
        assert log.flush() == 0
        assert [e["event"] for e in log.load()] == ["create"]


class TestManagerDeferredLog:
    def test_defer_swaps_log_and_is_idempotent(self, tmp_path):
        manager = make_manager(log_path=tmp_path / "events.jsonl")
        assert isinstance(manager._log, EventLog)
        assert not isinstance(manager._log, BufferedEventLog)
        assert manager.defer_log_writes() is True
        buffered = manager._log
        assert isinstance(buffered, BufferedEventLog)
        assert manager.defer_log_writes() is True
        assert manager._log is buffered

    def test_defer_without_log_reports_false(self):
        manager = make_manager()
        assert manager.defer_log_writes() is False
        assert manager.flush_log() == 0

    def test_events_hit_disk_only_on_flush(self, tmp_path):
        path = tmp_path / "events.jsonl"
        manager = make_manager(log_path=path)
        manager.defer_log_writes()
        sid = manager.create_session(SPEC)
        question = manager.next_question(sid)
        manager.submit_answer(sid, question.i, question.j, True)
        assert not path.exists()
        assert manager.flush_log() == 2
        events = EventLog(path).load()
        assert [e["event"] for e in events] == ["create", "answer"]
        assert manager.flush_log() == 0  # drained

    def test_resume_from_flushed_deferred_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        manager = make_manager(log_path=path)
        manager.defer_log_writes()
        sid = manager.create_session(SPEC)
        for _ in range(3):
            question = manager.next_question(sid)
            if question is None:
                break
            manager.submit_answer(sid, question.i, question.j, True)
        manager.flush_log()
        resumed = SessionManager.resume(
            path, builder=GridBuilder(resolution=256)
        )
        assert resumed.session_ids() == [sid]
        assert resumed.questions_asked(sid) == manager.questions_asked(sid)
        assert resumed.next_question(sid) == manager.next_question(sid)


async def _http(host, port, method, path, body=None):
    """Minimal HTTP/1.1 client: one request, one JSON response."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


class TestServerDurability:
    def test_mutations_are_on_disk_before_the_response(self, tmp_path):
        """200 ⇒ logged, even though handlers never open() on the loop."""
        path = tmp_path / "events.jsonl"

        async def scenario():
            manager = make_manager(log_path=path)
            server = await start_server(manager, port=0)
            # start_server moved the log into deferred (buffered) mode.
            assert isinstance(manager._log, BufferedEventLog)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                status, created = await _http(
                    host, port, "POST", "/v1/sessions", {"spec": SPEC}
                )
                assert status == 200
                sid = created["session_id"]
                # The create event was flushed before the 200 reached us.
                assert [e["event"] for e in EventLog(path).load()] == [
                    "create"
                ]
                status, question = await _http(
                    host, port, "GET", f"/v1/sessions/{sid}/next"
                )
                assert status == 200
                i, j = question["question"]["i"], question["question"]["j"]
                status, _ = await _http(
                    host,
                    port,
                    "POST",
                    f"/v1/sessions/{sid}/answers",
                    {"i": i, "j": j, "holds": True},
                )
                assert status == 200
                status, _ = await _http(
                    host, port, "POST", f"/v1/sessions/{sid}/close"
                )
                assert status == 200
                assert manager._log.pending == 0
                return sid
            finally:
                server.close()
                await server.wait_closed()

        sid = asyncio.run(scenario())
        events = EventLog(path).load()
        assert [e["event"] for e in events] == ["create", "answer", "close"]
        resumed = SessionManager.resume(
            path, builder=GridBuilder(resolution=256)
        )
        assert resumed.questions_asked(sid) == 1
        assert resumed._get(sid).status == "closed"

    def test_unlogged_manager_still_serves(self, tmp_path):
        """No log configured → no executor, handlers still respond."""

        async def scenario():
            manager = make_manager()
            server = await start_server(manager, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                status, created = await _http(
                    host, port, "POST", "/v1/sessions", {"spec": SPEC}
                )
                assert status == 200
                status, _ = await _http(
                    host,
                    port,
                    "POST",
                    f"/v1/sessions/{created['session_id']}/close",
                )
                assert status == 200
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
