"""Property-based tests for expected-residual-uncertainty invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.questions import Question, ResidualEvaluator
from repro.questions.candidates import informative_questions
from repro.tpo.space import OrderingSpace
from repro.uncertainty import EntropyMeasure


@st.composite
def spaces(draw):
    """Random weighted top-K prefix spaces over a small universe."""
    n = draw(st.integers(min_value=3, max_value=6))
    k = draw(st.integers(min_value=2, max_value=min(3, n)))
    count = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    paths = np.array([rng.permutation(n)[:k] for _ in range(count)])
    paths = np.unique(paths, axis=0)
    probs = rng.random(paths.shape[0]) + 1e-3
    return OrderingSpace(paths, probs, n)


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_single_residual_never_exceeds_prior_entropy(space):
    """Conditioning cannot raise expected Shannon entropy: R_q ≤ U_H."""
    evaluator = ResidualEvaluator(EntropyMeasure())
    prior = evaluator.uncertainty(space)
    for question in informative_questions(space)[:6]:
        assert evaluator.single(space, question) <= prior + 1e-9


@given(spaces())
@settings(max_examples=40, deadline=None)
def test_question_set_monotone_in_inclusion(space):
    """Adding a question to a set never increases the expected entropy."""
    evaluator = ResidualEvaluator(EntropyMeasure())
    questions = informative_questions(space)
    if len(questions) < 2:
        return
    smaller = evaluator.question_set(space, questions[:1])
    larger = evaluator.question_set(space, questions[:2])
    assert larger <= smaller + 1e-9


@given(spaces())
@settings(max_examples=40, deadline=None)
def test_residual_non_negative(space):
    evaluator = ResidualEvaluator(EntropyMeasure())
    for question in informative_questions(space)[:4]:
        assert evaluator.single(space, question) >= -1e-12


@given(spaces(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_apply_answer_preserves_probability_mass(space, seed):
    """Both hard pruning and soft reweighting leave a normalized space."""
    rng = np.random.default_rng(seed)
    evaluator = ResidualEvaluator(EntropyMeasure())
    questions = informative_questions(space)
    if not questions:
        return
    question = questions[int(rng.integers(len(questions)))]
    holds = bool(rng.integers(2))
    for accuracy in (1.0, 0.8):
        updated = evaluator.apply_answer(space, question, holds, accuracy)
        assert abs(updated.probabilities.sum() - 1.0) < 1e-9


@given(spaces())
@settings(max_examples=40, deadline=None)
def test_all_pairs_resolve_to_zero_entropy(space):
    """Asking every informative pair pins the ordering (R → 0) whenever
    the decisive pattern distinguishes all paths."""
    evaluator = ResidualEvaluator(EntropyMeasure())
    questions = [
        Question(i, j)
        for i in range(space.n_tuples)
        for j in range(i + 1, space.n_tuples)
    ]
    residual = evaluator.question_set(space, questions)
    # Each path of a top-K prefix space induces a distinct stance pattern
    # over all pairs, so the partition isolates every path.
    assert residual <= 1e-9
