"""Tests for transitive answer inference."""

import numpy as np
import pytest

from repro.crowd import GroundTruth, SimulatedCrowd
from repro.api import POLICIES
from repro.core import UncertaintyReductionSession
from repro.distributions import Uniform
from repro.questions import Answer, InferenceCache, Question, TransitiveClosure
from repro.tpo import GridBuilder


class TestClosure:
    def test_direct_fact(self):
        closure = TransitiveClosure(4)
        closure.add(0, 1)
        assert closure.implies(0, 1) is True
        assert closure.implies(1, 0) is False
        assert closure.implies(0, 2) is None
        assert closure.knows(0, 1)
        assert not closure.knows(2, 3)

    def test_transitive_chain(self):
        closure = TransitiveClosure(5)
        closure.add(0, 1)
        closure.add(1, 2)
        closure.add(2, 3)
        assert closure.implies(0, 3) is True
        assert closure.implies(3, 0) is False
        assert closure.known_pairs() == 6  # full chain closure on 4 nodes

    def test_propagates_through_existing_structure(self):
        closure = TransitiveClosure(6)
        closure.add(0, 1)
        closure.add(2, 3)
        closure.add(1, 2)  # links the two chains
        assert closure.implies(0, 3) is True

    def test_contradiction_rejected(self):
        closure = TransitiveClosure(3)
        closure.add(0, 1)
        closure.add(1, 2)
        with pytest.raises(ValueError):
            closure.add(2, 0)

    def test_duplicate_fact_is_noop(self):
        closure = TransitiveClosure(3)
        closure.add(0, 1)
        closure.add(0, 1)
        assert closure.known_pairs() == 1

    def test_self_fact_rejected(self):
        with pytest.raises(ValueError):
            TransitiveClosure(3).add(1, 1)

    def test_add_answer_respects_direction(self):
        closure = TransitiveClosure(3)
        closure.add_answer(Answer(Question(0, 1), holds=False))
        assert closure.implies(1, 0) is True

    def test_noisy_answer_rejected(self):
        closure = TransitiveClosure(3)
        with pytest.raises(ValueError):
            closure.add_answer(Answer(Question(0, 1), True, accuracy=0.8))

    def test_seed_from_supports(self):
        dists = [Uniform(0, 1), Uniform(2, 3), Uniform(2.5, 3.5)]
        closure = TransitiveClosure(3)
        seeded = closure.seed_from_supports(dists)
        assert seeded == 2  # t1 > t0 and t2 > t0 certain; t1/t2 overlap
        assert closure.implies(1, 0) is True
        assert closure.implies(2, 0) is True
        assert closure.implies(1, 2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitiveClosure(0)


class TestInferenceCache:
    def test_lookup_and_record_cycle(self):
        cache = InferenceCache(4)
        assert cache.lookup(Question(0, 1)) is None
        cache.record(Answer(Question(0, 1), True))
        cache.record(Answer(Question(1, 2), True))
        free = cache.lookup(Question(0, 2))
        assert free is not None and free.holds is True
        assert cache.savings == 1
        assert cache.asked == 2

    def test_seeding_counts(self):
        dists = [Uniform(0, 1), Uniform(5, 6)]
        cache = InferenceCache(2, dists)
        assert cache.seeded == 1
        assert cache.lookup(Question(0, 1)).holds is False  # t1 above t0


class TestSessionIntegration:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(4)
        dists = [Uniform(c, c + 0.35) for c in rng.random(10)]
        truth = GroundTruth.sample(dists, rng=1)
        return dists, truth

    def _run(self, dists, truth, inference, policy="naive", budget=12):
        crowd = SimulatedCrowd(truth, rng=np.random.default_rng(7))
        session = UncertaintyReductionSession(
            dists, 5, crowd,
            builder=GridBuilder(resolution=500),
            rng=np.random.default_rng(8),
            use_transitive_inference=inference,
        )
        return session.run(POLICIES.create(policy), budget)

    def test_closure_never_pays_for_implied_questions(self, setup):
        dists, truth = setup
        result = self._run(dists, truth, inference=True)
        assert result.inferred_answers >= 0
        assert result.questions_asked <= 12

    def test_closure_does_not_hurt_quality(self, setup):
        dists, truth = setup
        without = self._run(dists, truth, inference=False)
        with_closure = self._run(dists, truth, inference=True)
        assert with_closure.distance_to_truth <= (
            without.distance_to_truth + 0.05
        )

    def test_closure_disabled_reports_zero(self, setup):
        dists, truth = setup
        result = self._run(dists, truth, inference=False)
        assert result.inferred_answers == 0

    def test_closure_ignored_for_noisy_crowds(self, setup):
        dists, truth = setup
        crowd = SimulatedCrowd(
            truth, worker_accuracy=0.8, rng=np.random.default_rng(7)
        )
        session = UncertaintyReductionSession(
            dists, 5, crowd,
            builder=GridBuilder(resolution=500),
            rng=np.random.default_rng(8),
            use_transitive_inference=True,
        )
        result = session.run(POLICIES.create("T1-on"), 5)
        assert result.inferred_answers == 0
