"""Batch-vs-scalar parity of the residual-evaluation engine.

The batched path (`rank_singles_batch`, batched `set_residual_from_codes`,
`UncertaintyMeasure.evaluate_batch`) must reproduce the scalar oracle
(`single`/`rank_singles`/`set_residual_from_codes_scalar`) to 1e-9 across
every registered uncertainty measure and every TPO construction engine.
"""

import numpy as np
import pytest

from repro.distributions.uniform import Uniform
from repro.questions.candidates import all_pair_questions
from repro.questions.residual import ResidualEvaluator
from repro.api import ENGINES, MEASURES
from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure

ENGINE_PARAMS = {
    "grid": {"resolution": 64},
    "exact": {},
    "mc": {"samples": 4000, "seed": 7},
}


def engine_space(engine: str) -> OrderingSpace:
    """A small but non-trivial top-3 space built by the given engine."""
    rng = np.random.default_rng(11)
    distributions = [Uniform(c, c + 0.45) for c in rng.random(6)]
    builder = ENGINES.create(engine, **ENGINE_PARAMS[engine])
    return builder.build(distributions, 3).to_space()


def random_space(seed: int) -> OrderingSpace:
    """A random weighted prefix space (exercises silent/settled pairs)."""
    rng = np.random.default_rng(seed)
    n, k = 7, 3
    paths = np.unique(
        np.array([rng.permutation(n)[:k] for _ in range(25)]), axis=0
    )
    return OrderingSpace(paths, rng.random(paths.shape[0]) + 1e-3, n)


@pytest.mark.parametrize("engine", sorted(ENGINE_PARAMS))
@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_singles_batch_matches_scalar_across_engines(engine, name):
    space = engine_space(engine)
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)
    np.testing.assert_allclose(
        evaluator.rank_singles_batch(space, questions),
        evaluator.rank_singles(space, questions),
        rtol=0.0,
        atol=1e-9,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_singles_batch_matches_scalar_on_random_spaces(seed, name):
    space = random_space(seed)
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)
    np.testing.assert_allclose(
        evaluator.rank_singles_batch(space, questions),
        evaluator.rank_singles(space, questions),
        rtol=0.0,
        atol=1e-9,
    )


@pytest.mark.parametrize("pattern_cap", [None, 3])
@pytest.mark.parametrize("name", MEASURES.available())
def test_set_residual_batch_matches_scalar(name, pattern_cap):
    space = engine_space("grid")
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)[:5]
    codes = evaluator.codes_matrix(space, questions)
    batched = evaluator.set_residual_from_codes(space, codes, pattern_cap)
    scalar = evaluator.set_residual_from_codes_scalar(
        space, codes, pattern_cap
    )
    assert abs(batched - scalar) < 1e-9


@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_singles_batch_matches_scalar_on_tied_masses(name):
    """Uniform path masses (the Monte Carlo engine's natural output) tie
    expected Borda positions exactly — the batch path must still agree
    with the scalar oracle (regression: fp-association tie flips)."""
    rng = np.random.default_rng(17)
    n, k = 5, 3
    paths = np.unique(
        np.array([rng.permutation(n)[:k] for _ in range(20)]), axis=0
    )
    space = OrderingSpace(paths, np.ones(paths.shape[0]), n)
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)
    np.testing.assert_allclose(
        evaluator.rank_singles_batch(space, questions),
        evaluator.rank_singles(space, questions),
        rtol=0.0,
        atol=1e-9,
    )


@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_singles_batch_matches_scalar_with_zero_probability_paths(name):
    """Zero-mass paths stay in the space under restrict(); the batch path
    must keep their tuples in aggregation candidate sets too (regression:
    ORA presence was derived from weights > 0)."""
    rng = np.random.default_rng(31)
    for trial in range(4):
        n, k = 6, 3
        paths = np.unique(
            np.array([rng.permutation(n)[:k] for _ in range(18)]), axis=0
        )
        probs = rng.random(paths.shape[0]) + 1e-3
        probs[rng.integers(0, paths.shape[0], 5)] = 0.0  # dead paths
        space = OrderingSpace(paths, probs, n)
        evaluator = ResidualEvaluator(MEASURES.create(name))
        questions = all_pair_questions(space)
        np.testing.assert_allclose(
            evaluator.rank_singles_batch(space, questions),
            evaluator.rank_singles(space, questions),
            rtol=0.0,
            atol=1e-9,
        )


@pytest.mark.parametrize("name", MEASURES.available())
@pytest.mark.parametrize("pattern_cap", [2, 3, 5])
def test_rank_set_extensions_cap_tie_parity(name, pattern_cap):
    """Capped pattern cuts must resolve mass ties exactly like
    set_residual_from_codes — uniform masses make every pattern tie."""
    rng = np.random.default_rng(37)
    paths = np.unique(
        np.array([rng.permutation(6)[:3] for _ in range(20)]), axis=0
    )
    space = OrderingSpace(paths, np.ones(paths.shape[0]), 6)
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)[:6]
    codes = evaluator.codes_matrix(space, questions)
    for base in ([], [0], [1, 4]):
        candidates = [c for c in range(len(questions)) if c not in base]
        batched = evaluator.rank_set_extensions(
            space, codes, base, candidates, pattern_cap
        )
        sibling = np.array(
            [
                evaluator.set_residual_from_codes(
                    space, codes[:, base + [c]], pattern_cap
                )
                for c in candidates
            ]
        )
        np.testing.assert_allclose(batched, sibling, rtol=0.0, atol=1e-9)


@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_set_extensions_matches_per_candidate_scalar(name):
    space = engine_space("grid")
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)[:8]
    codes = evaluator.codes_matrix(space, questions)
    for base in ([], [0], [2, 5]):
        candidates = [c for c in range(len(questions)) if c not in base]
        batched = evaluator.rank_set_extensions(space, codes, base, candidates)
        scalar = np.array(
            [
                evaluator.set_residual_from_codes_scalar(
                    space, codes[:, base + [c]]
                )
                for c in candidates
            ]
        )
        np.testing.assert_allclose(batched, scalar, rtol=0.0, atol=1e-9)


@pytest.mark.parametrize("name", MEASURES.available())
def test_evaluate_batch_matches_base_oracle_on_reweighted_rows(name):
    """The batch API accepts arbitrary posterior weight rows, not just
    prunings of the prior — values must match the base-class row-by-row
    oracle even when reweighted rows tie (regression: the ORA tie
    fallback once aggregated under the prior's masses instead)."""
    rng = np.random.default_rng(23)
    for trial in range(6):
        space = random_space(trial)
        measure = MEASURES.create(name)
        rows = rng.random((8, space.size)) + 1e-6
        rows[:, rng.integers(0, space.size, 3)] = 0.0  # some pruned paths
        # Force exact expected-position ties in half the rows.
        rows[::2] = np.round(rows[::2] * 4) / 4 + 0.25
        oracle = UncertaintyMeasure.evaluate_batch(measure, space, rows)
        np.testing.assert_allclose(
            measure.evaluate_batch(space, rows), oracle, rtol=0.0, atol=1e-9
        )


class _LeafCountMeasure(UncertaintyMeasure):
    """Custom measure without a batch override → exercises the fallback."""

    name = "leafcount"

    def __call__(self, space: OrderingSpace) -> float:
        return float(np.log2(space.size)) if space.size > 1 else 0.0


def test_generic_fallback_keeps_custom_measures_correct():
    space = random_space(5)
    evaluator = ResidualEvaluator(_LeafCountMeasure())
    questions = all_pair_questions(space)
    np.testing.assert_allclose(
        evaluator.rank_singles_batch(space, questions),
        evaluator.rank_singles(space, questions),
        rtol=0.0,
        atol=1e-12,
    )


def test_evaluate_batch_rejects_bad_weights():
    space = random_space(6)
    measure = MEASURES.create("H")
    with pytest.raises(ValueError):
        measure.evaluate_batch(space, np.ones(space.size))  # 1-D
    with pytest.raises(ValueError):
        measure.evaluate_batch(space, np.ones((2, space.size + 1)))
    with pytest.raises(ValueError):
        measure.evaluate_batch(space, -np.ones((1, space.size)))
    with pytest.raises(ValueError):
        measure.evaluate_batch(space, np.zeros((1, space.size)))


@pytest.mark.parametrize("name", MEASURES.available())
def test_rank_singles_batch_chunked_matches_unchunked(name):
    """Tiny chunks (forcing many evaluate_restrictions calls and chunked
    mass matvecs) must not change values."""
    space = random_space(9)
    evaluator = ResidualEvaluator(MEASURES.create(name))
    questions = all_pair_questions(space)
    np.testing.assert_allclose(
        evaluator.rank_singles_batch(space, questions, chunk=3),
        evaluator.rank_singles(space, questions),
        rtol=0.0,
        atol=1e-9,
    )


def test_batch_counts_evaluations():
    space = random_space(7)
    evaluator = ResidualEvaluator(MEASURES.create("H"))
    before = evaluator.evaluations
    evaluator.rank_singles_batch(space, all_pair_questions(space))
    assert evaluator.evaluations > before


def test_codes_matrix_is_one_shot_stance_matrix():
    space = random_space(8)
    evaluator = ResidualEvaluator(MEASURES.create("H"))
    questions = all_pair_questions(space)
    codes = evaluator.codes_matrix(space, questions)
    assert codes.shape == (space.size, len(questions))
    for column, question in enumerate(questions):
        np.testing.assert_array_equal(
            codes[:, column], space.agreement_codes(question.i, question.j)
        )


class TestRankSinglesMany:
    """The cross-session coalescing entry point."""

    def test_matches_per_request_ranking(self):
        evaluator = ResidualEvaluator(MEASURES.create("H"))
        spaces = [random_space(seed) for seed in (1, 2, 3)]
        requests = [(s, all_pair_questions(s)) for s in spaces]
        results = evaluator.rank_singles_many(requests)
        for (space, questions), values in zip(requests, results, strict=True):
            np.testing.assert_allclose(
                values,
                evaluator.rank_singles_batch(space, questions),
                rtol=0.0,
                atol=1e-12,
            )

    def test_shared_keys_price_once(self):
        evaluator = ResidualEvaluator(MEASURES.create("H"))
        space = random_space(4)
        questions = all_pair_questions(space)
        requests = [(space, questions)] * 3
        before = evaluator.evaluations
        results = evaluator.rank_singles_many(
            requests, keys=["same", "same", "same"]
        )
        priced_once = evaluator.evaluations - before
        evaluator.rank_singles_batch(space, questions)
        per_call = evaluator.evaluations - before - priced_once
        assert priced_once == per_call  # one batched pass for 3 requests
        assert results[0] is results[1] is results[2]

    def test_distinct_keys_price_separately(self):
        evaluator = ResidualEvaluator(MEASURES.create("H"))
        a, b = random_space(5), random_space(6)
        results = evaluator.rank_singles_many(
            [(a, all_pair_questions(a)), (b, all_pair_questions(b))],
            keys=["a", "b"],
        )
        assert len(results) == 2
        assert results[0] is not results[1]

    def test_key_count_mismatch_rejected(self):
        evaluator = ResidualEvaluator(MEASURES.create("H"))
        space = random_space(5)
        with pytest.raises(ValueError):
            evaluator.rank_singles_many(
                [(space, all_pair_questions(space))], keys=["a", "b"]
            )

    def test_empty_requests(self):
        evaluator = ResidualEvaluator(MEASURES.create("H"))
        assert evaluator.rank_singles_many([]) == []
