"""Tests for the question model, candidate generation, and residuals."""

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.questions import (
    Answer,
    Question,
    ResidualEvaluator,
    all_pair_questions,
    informative_questions,
    is_settled,
    relevant_questions,
)
from repro.tpo.space import OrderingSpace
from repro.uncertainty import EntropyMeasure


class TestQuestionModel:
    def test_canonicalizes_order(self):
        assert Question(3, 1) == Question(1, 3)
        assert Question(3, 1).pair == (1, 3)

    def test_rejects_self_comparison(self):
        with pytest.raises(ValueError):
            Question(2, 2)

    def test_hashable_and_sortable(self):
        questions = {Question(0, 1), Question(1, 0), Question(0, 2)}
        assert len(questions) == 2
        assert sorted(questions)[0] == Question(0, 1)

    def test_answer_repr_mentions_relation(self):
        yes = Answer(Question(0, 1), True)
        no = Answer(Question(0, 1), False, accuracy=0.8)
        assert "≺" in repr(yes)
        assert "⊀" in repr(no)
        assert no.accuracy == 0.8


class TestCandidates:
    def test_all_pairs_counts(self, toy_space):
        questions = all_pair_questions(toy_space)
        assert len(questions) == 6  # C(4,2), all tuples present

    def test_relevant_excludes_settled(self, toy_space):
        # Pair (2,3): only path [2,3] mentions both → always 2 ≺ 3: settled.
        questions = informative_questions(toy_space)
        assert Question(2, 3) not in questions
        assert Question(0, 1) in questions

    def test_relevant_uses_pdf_overlap(self):
        dists = [Uniform(0, 1), Uniform(0.5, 1.5), Uniform(2, 3)]
        paths = [[2, 1], [2, 0]]
        space = OrderingSpace.from_orderings(paths, [0.6, 0.4], 3)
        questions = relevant_questions(space, dists)
        # Pair (0,2) and (1,2) have disjoint pdfs → excluded even though
        # tuple 2 appears in the tree.
        assert Question(0, 2) not in questions
        assert Question(1, 2) not in questions

    def test_is_settled(self, toy_space):
        assert is_settled(toy_space, 2, 3)
        assert not is_settled(toy_space, 0, 1)


@pytest.fixture
def evaluator():
    return ResidualEvaluator(EntropyMeasure())


class TestSingleResidual:
    def test_two_outcome_expectation(self, toy_space, evaluator):
        question = Question(0, 1)
        codes = toy_space.agreement_codes(0, 1)
        p_yes = toy_space.answer_probability(0, 1)
        measure = EntropyMeasure()
        expected = p_yes * measure(
            toy_space.restrict(codes != -1)
        ) + (1 - p_yes) * measure(toy_space.restrict(codes != 1))
        assert evaluator.single(toy_space, question) == pytest.approx(expected)

    def test_useless_question_returns_current_uncertainty(self, evaluator):
        space = OrderingSpace.from_orderings(
            [[0, 1], [1, 0]], [0.5, 0.5], 4
        )
        # Pair (2,3) appears in no ordering: no pruning possible.
        value = evaluator.single(space, Question(2, 3))
        assert value == pytest.approx(EntropyMeasure()(space))

    def test_residual_never_exceeds_prior_for_entropy(
        self, small_space, evaluator
    ):
        prior = EntropyMeasure()(small_space)
        for question in informative_questions(small_space):
            assert evaluator.single(small_space, question) <= prior + 1e-9

    def test_rank_singles_aligned(self, toy_space, evaluator):
        questions = informative_questions(toy_space)
        residuals = evaluator.rank_singles(toy_space, questions)
        assert residuals.shape == (len(questions),)
        for question, value in zip(questions, residuals, strict=True):
            assert value == pytest.approx(
                evaluator.single(toy_space, question)
            )


class TestQuestionSetResidual:
    def test_empty_set_is_current_uncertainty(self, toy_space, evaluator):
        assert evaluator.question_set(toy_space, []) == pytest.approx(
            EntropyMeasure()(toy_space)
        )

    def test_single_question_set_matches_single(self, toy_space, evaluator):
        question = Question(0, 1)
        # With some silent paths the partition treats silence as its own
        # pattern; on a fully decisive pair the two notions coincide.
        decisive = toy_space.restrict(
            toy_space.agreement_codes(0, 1) != 0
        )
        assert evaluator.question_set(
            decisive, [question]
        ) == pytest.approx(evaluator.single(decisive, question))

    def test_superset_never_increases_entropy_residual(
        self, small_space, evaluator
    ):
        questions = informative_questions(small_space)[:4]
        if len(questions) < 3:
            pytest.skip("not enough candidates in this instance")
        smaller = evaluator.question_set(small_space, questions[:2])
        larger = evaluator.question_set(small_space, questions[:3])
        assert larger <= smaller + 1e-9

    def test_full_question_set_resolves_space(self, small_space, evaluator):
        questions = all_pair_questions(small_space)
        residual = evaluator.question_set(small_space, questions)
        # Asking every pair pins down the ordering: residual ~ 0.
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_pattern_cap_is_upper_bound(self, small_space, evaluator):
        questions = informative_questions(small_space)[:3]
        exact_value = evaluator.question_set(small_space, questions)
        capped = evaluator.question_set(
            small_space, questions, pattern_cap=2
        )
        assert capped >= exact_value - 1e-9

    def test_codes_matrix_shape(self, toy_space, evaluator):
        questions = [Question(0, 1), Question(0, 2)]
        codes = evaluator.codes_matrix(toy_space, questions)
        assert codes.shape == (4, 2)
        np.testing.assert_array_equal(
            codes[:, 0], toy_space.agreement_codes(0, 1)
        )


class TestApplyAnswer:
    def test_reliable_answer_prunes(self, toy_space, evaluator):
        updated = evaluator.apply_answer(
            toy_space, Question(0, 1), holds=True, accuracy=1.0
        )
        assert updated.size == 3

    def test_noisy_answer_reweights(self, toy_space, evaluator):
        updated = evaluator.apply_answer(
            toy_space, Question(0, 1), holds=True, accuracy=0.8
        )
        assert updated.size == toy_space.size

    def test_contradiction_is_swallowed(self, evaluator):
        space = OrderingSpace.from_orderings([[0, 1]], [1.0], 4)
        updated = evaluator.apply_answer(
            space, Question(0, 1), holds=False, accuracy=1.0
        )
        assert updated is space

    def test_evaluation_counter_increases(self, toy_space, evaluator):
        before = evaluator.evaluations
        evaluator.single(toy_space, Question(0, 1))
        assert evaluator.evaluations > before
