"""Snapshot of the public API surface.

``repro.api`` is the stable front door: adding a name is a conscious,
reviewed act, and removing or renaming one is a breaking change.  This
test pins the exact exported surface so accidental drift fails CI (it
also runs inside the lint job).
"""

import repro.api as api

EXPECTED_API_ALL = [
    # canonical identity
    "canonical_json",
    "content_key",
    # registry subsystem
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "DuplicateNameError",
    # the catalog
    "POLICIES",
    "MEASURES",
    "WORKLOADS",
    "SCENARIOS",
    "CROWD_MODELS",
    "DISTRIBUTIONS",
    "ENGINES",
    "STORES",
    "EVALS",
    "CHECKS",
    "all_registries",
    # specs
    "InstanceSpec",
    "PolicySpec",
    "MeasureSpec",
    "CrowdSpec",
    "BudgetSpec",
    "EngineSpec",
    "SessionSpec",
    "StoreSpec",
    "ServeSpec",
    "SHARD_STRATEGIES",
    "as_instance_spec",
    # execution
    "PreparedSession",
    "ReplayResult",
    "prepare_session",
    "replay_session",
    "run_session",
]

#: Every enumerable plugin axis — ``repro list`` kinds and the
#: ``/v1/meta`` plugin map share exactly this key set.
EXPECTED_REGISTRY_KINDS = [
    "checks",
    "crowd_models",
    "distributions",
    "engines",
    "evals",
    "lint_rules",
    "measures",
    "policies",
    "scenarios",
    "stores",
    "workloads",
]

EXPECTED_BUILTIN_PLUGINS = {
    "policies": [
        "A*-off",
        "A*-on",
        "C-off",
        "T1-on",
        "TB-off",
        "exhaustive",
        "incr",
        "naive",
        "random",
    ],
    "measures": ["H", "Hw", "MPO", "ORA"],
    "workloads": [
        "clustered",
        "gaussian",
        "jittered",
        "mixed",
        "pareto",
        "triangular",
        "uniform",
    ],
    "scenarios": ["photo_contest", "restaurant_guide", "sensor_network"],
    "crowd_models": ["adversarial", "noisy", "perfect"],
    "distributions": [
        "affine",
        "gaussian",
        "histogram",
        "mixture",
        "pareto",
        "point",
        "triangular",
        "uniform",
    ],
    "engines": ["exact", "grid", "mc"],
    "stores": ["disk-npz", "memory", "shared-memory"],
    "evals": ["calibration", "golden", "regret"],
    "lint_rules": [
        "RPL001",
        "RPL002",
        "RPL003",
        "RPL004",
        "RPL005",
        "RPL006",
        "RPL007",
        "RPL008",
        "RPL009",
        "RPL010",
    ],
    "checks": ["RPC101", "RPC102", "RPC103", "RPC104"],
}


def test_api_all_is_exactly_the_reviewed_surface():
    assert list(api.__all__) == EXPECTED_API_ALL


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_registry_kind_list_is_stable():
    assert sorted(api.all_registries()) == EXPECTED_REGISTRY_KINDS


def test_builtin_plugin_names_are_stable():
    observed = {
        kind: registry.available()
        for kind, registry in api.all_registries().items()
    }
    assert observed == EXPECTED_BUILTIN_PLUGINS
