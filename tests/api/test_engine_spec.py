"""EngineSpec: the frozen engine surface and its byte-stability contract.

Exact-mode signatures, cache keys, and SessionSpec content keys are
pinned to the literal values produced before EngineSpec existed — any
drift here silently invalidates every cached TPO artifact and replay
log, so the hashes are spelled out rather than recomputed.
"""

import warnings

import pytest

from repro.api import EngineSpec, InstanceSpec, SessionSpec
from repro.service.cache import instance_key
from repro.service.manager import builder_signature
from repro.tpo.builders import ExactBuilder, GridBuilder, MonteCarloBuilder

#: Pre-EngineSpec cache key for the default grid engine on the
#: canonical instance (n=8, k=3, uniform, seed=7).  Frozen.
PINNED_TPO_KEY = "20ed40f10ec56fc8f8d921d4f23bdd88"
#: Pre-EngineSpec SessionSpec.content_key() for the same instance.
PINNED_SESSION_KEY = "42d0a30fb308cbe916d8ffc016a230b5"

PINNED_SIGNATURES = {
    "grid": {
        "type": "GridBuilder",
        "min_probability": 1e-09,
        "max_orderings": 200000,
        "resolution": 1024,
    },
    "exact": {
        "type": "ExactBuilder",
        "min_probability": 1e-12,
        "max_orderings": 200000,
        "resolution": None,
    },
    "mc": {
        "type": "MonteCarloBuilder",
        "min_probability": 0.0,
        "max_orderings": 200000,
        "resolution": None,
    },
}


class TestConstructionAndValidation:
    def test_defaults(self):
        spec = EngineSpec()
        assert spec.name == "grid"
        assert spec.params == {}

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError):
            EngineSpec("quantum")

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError):
            EngineSpec("grid", {"warp": 9}).build()

    def test_build_returns_engine_instances(self):
        assert isinstance(EngineSpec("grid").build(), GridBuilder)
        assert isinstance(EngineSpec("exact").build(), ExactBuilder)
        assert isinstance(
            EngineSpec("mc", {"samples": 100, "seed": 1}).build(),
            MonteCarloBuilder,
        )

    def test_round_trip(self):
        spec = EngineSpec("grid", {"resolution": 256, "beam_epsilon": 0.1})
        assert EngineSpec.from_dict(spec.to_dict()) == spec
        assert EngineSpec.from_dict(spec) is spec
        assert EngineSpec.from_dict("exact") == EngineSpec("exact")

    def test_from_dict_rejects_unknown_keys(self):
        assert EngineSpec.from_dict({"name": "grid"}) == EngineSpec("grid")
        with pytest.raises(ValueError):
            EngineSpec.from_dict(
                {"name": "grid", "params": {}, "extra": 1}
            )


class TestByteStability:
    """Exact-mode keys must be byte-identical to their pre-spec values."""

    @pytest.mark.parametrize("name", sorted(PINNED_SIGNATURES))
    def test_signature_matches_pinned(self, name):
        assert EngineSpec(name).signature() == PINNED_SIGNATURES[name]

    def test_signature_for_matches_builder_signature(self):
        for builder in (
            GridBuilder(resolution=256),
            ExactBuilder(),
            MonteCarloBuilder(samples=10, seed=0),
        ):
            assert builder_signature(builder) == EngineSpec.signature_for(
                builder
            )

    def test_exact_mode_signature_has_no_beam_key(self):
        assert "beam" not in EngineSpec("grid").signature()
        beamed = EngineSpec("grid", {"beam_epsilon": 0.05}).signature()
        assert beamed["beam"] == {"epsilon": 0.05, "width": None}

    def test_canonical_json(self):
        assert EngineSpec().canonical_json() == '{"name":"grid","params":{}}'

    def test_pinned_tpo_key(self):
        ispec = InstanceSpec(n=8, k=3, workload="uniform", seed=7)
        key = instance_key(
            {
                "spec": ispec.to_dict(),
                "builder": EngineSpec().signature(),
            }
        )
        assert key == PINNED_TPO_KEY

    def test_pinned_session_content_key(self):
        ispec = InstanceSpec(n=8, k=3, workload="uniform", seed=7)
        assert SessionSpec(instance=ispec).content_key() == PINNED_SESSION_KEY

    def test_beam_changes_tpo_key(self):
        ispec = InstanceSpec(n=8, k=3, workload="uniform", seed=7)
        key = instance_key(
            {
                "spec": ispec.to_dict(),
                "builder": EngineSpec(
                    "grid", {"beam_epsilon": 0.05}
                ).signature(),
            }
        )
        assert key != PINNED_TPO_KEY


class TestSessionSpecIntegration:
    @pytest.fixture
    def ispec(self):
        return InstanceSpec(n=8, k=3, workload="uniform", seed=7)

    def test_engine_spec_accepted_directly(self, ispec):
        spec = SessionSpec(
            instance=ispec,
            engine=EngineSpec("grid", {"resolution": 256}),
        )
        assert spec.engine == "grid"
        assert spec.engine_params == {"resolution": 256}
        assert spec.engine_spec == EngineSpec("grid", {"resolution": 256})
        assert isinstance(spec.build_builder(), GridBuilder)

    def test_engine_params_constructor_path_warns(self, ispec):
        with pytest.warns(DeprecationWarning, match="EngineSpec"):
            spec = SessionSpec(
                instance=ispec, engine_params={"resolution": 256}
            )
        assert spec.engine_params == {"resolution": 256}

    def test_engine_spec_plus_engine_params_rejected(self, ispec):
        with pytest.raises(ValueError, match="engine_params"):
            SessionSpec(
                instance=ispec,
                engine=EngineSpec("grid"),
                engine_params={"resolution": 256},
            )

    def test_from_dict_replay_never_warns(self, ispec):
        payload = {
            "instance": ispec.to_dict(),
            "engine": "grid",
            "engine_params": {"resolution": 256},
        }
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = SessionSpec.from_dict(payload)
        assert spec.engine_params == {"resolution": 256}

    def test_wire_shape_unchanged(self, ispec):
        spec = SessionSpec(
            instance=ispec, engine=EngineSpec("grid", {"resolution": 256})
        )
        payload = spec.to_dict()
        assert payload["engine"] == "grid"
        assert payload["engine_params"] == {"resolution": 256}
        assert SessionSpec.from_dict(payload) == spec
