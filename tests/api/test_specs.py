"""Spec round-trip, canonical-JSON stability, and validation tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    BudgetSpec,
    CrowdSpec,
    EngineSpec,
    InstanceSpec,
    MeasureSpec,
    PolicySpec,
    SessionSpec,
    as_instance_spec,
    canonical_json,
    content_key,
    prepare_session,
    run_session,
)
from repro.api.catalog import POLICIES, WORKLOADS

# ----------------------------------------------------------------------
# Property tests: spec → JSON → spec identity, canonical JSON stability
# ----------------------------------------------------------------------

instance_specs = st.builds(
    InstanceSpec,
    n=st.integers(min_value=2, max_value=50),
    k=st.integers(min_value=1, max_value=60),
    workload=st.sampled_from(sorted(WORKLOADS)),
    seed=st.integers(min_value=-(2**31), max_value=2**31),
    params=st.dictionaries(
        st.sampled_from(["width", "span", "alpha"]),
        st.floats(
            min_value=0.01, max_value=10, allow_nan=False, width=64
        ),
        max_size=2,
    ),
)

session_specs = st.builds(
    SessionSpec,
    instance=instance_specs,
    policy=st.sampled_from([PolicySpec(n) for n in sorted(POLICIES)]),
    measure=st.sampled_from(
        [MeasureSpec("H"), MeasureSpec("Hw"), MeasureSpec("ORA")]
    ),
    crowd=st.builds(
        CrowdSpec,
        accuracy=st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
        replication=st.integers(min_value=1, max_value=5),
    ),
    budget=st.builds(BudgetSpec, questions=st.integers(0, 100)),
    engine=st.sampled_from(["grid", "exact", "mc"]),
)


class TestRoundTripProperties:
    @settings(max_examples=100)
    @given(spec=instance_specs)
    def test_instance_round_trip_identity(self, spec):
        assert InstanceSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=100)
    @given(spec=instance_specs)
    def test_instance_canonical_json_byte_stable(self, spec):
        via_json = InstanceSpec.from_dict(json.loads(spec.canonical_json()))
        assert via_json.canonical_json() == spec.canonical_json()
        assert via_json.content_key() == spec.content_key()

    @settings(max_examples=50)
    @given(spec=session_specs)
    def test_session_round_trip_identity(self, spec):
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=50)
    @given(spec=session_specs)
    def test_session_canonical_json_byte_stable(self, spec):
        rebuilt = SessionSpec.from_dict(json.loads(spec.canonical_json()))
        assert rebuilt.canonical_json() == spec.canonical_json()
        assert rebuilt.content_key() == spec.content_key()

    @settings(max_examples=100)
    @given(spec=instance_specs)
    def test_key_order_never_matters(self, spec):
        payload = spec.to_dict()
        reversed_payload = dict(reversed(list(payload.items())))
        assert (
            InstanceSpec.from_dict(reversed_payload).canonical_json()
            == spec.canonical_json()
        )


class TestCanonicalPrimitives:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_content_key_matches_historic_recipes(self):
        # Byte-compatible with GridCell.cell_id (8) / instance_key (16).
        import hashlib

        payload = {"x": 1}
        expected = hashlib.blake2b(
            b'{"x":1}', digest_size=8
        ).hexdigest()
        assert content_key(payload, digest_size=8) == expected
        assert len(content_key(payload)) == 32


class TestValidation:
    def test_instance_normalizes_like_the_service_always_did(self):
        spec = InstanceSpec.from_dict(
            {"workload": "uniform", "n": 6, "k": 30, "params": {"width": 0.2}}
        )
        assert spec.k == 6  # clamped to n
        assert spec.seed == 0
        assert list(spec.to_dict()) == ["workload", "n", "k", "seed", "params"]

    @pytest.mark.parametrize(
        "bad",
        [
            dict(n=1, k=1),
            dict(n=5, k=0),
            dict(n=5, k=2, workload="nope"),
            dict(n=5, k=2, params="width"),
        ],
    )
    def test_bad_instances_rejected(self, bad):
        with pytest.raises(ValueError):
            InstanceSpec(**bad)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            InstanceSpec.from_dict({"n": 5, "k": 2, "bogus": 1})
        with pytest.raises(ValueError, match="unknown session spec fields"):
            SessionSpec.from_dict(
                {"instance": {"n": 5, "k": 2}, "bogus": 1}
            )

    def test_specs_are_frozen(self):
        spec = InstanceSpec(n=5, k=2)
        with pytest.raises(AttributeError):
            spec.n = 6

    def test_unknown_names_suggest(self):
        with pytest.raises(ValueError, match="did you mean 'T1-on'"):
            PolicySpec("T1on")
        with pytest.raises(ValueError, match="did you mean 'Hw'"):
            MeasureSpec("hw")

    def test_crowd_validation(self):
        with pytest.raises(ValueError):
            CrowdSpec(accuracy=1.5)
        with pytest.raises(ValueError):
            CrowdSpec(replication=0)
        with pytest.raises(ValueError):
            CrowdSpec(model="psychic")

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            BudgetSpec(-1)
        assert BudgetSpec.from_dict(7).questions == 7

    def test_session_spec_coerces_component_shorthands(self):
        spec = SessionSpec(
            instance=InstanceSpec(n=12, k=5),
            policy="T1-on",
            measure={"name": "Hw"},
            budget=10,
        )
        assert spec.policy == PolicySpec("T1-on")
        assert spec.measure == MeasureSpec("Hw")
        assert spec.budget == BudgetSpec(10)
        with pytest.raises(ValueError):
            SessionSpec(instance=InstanceSpec(n=4, k=2), policy=42)
        with pytest.raises(ValueError):
            SessionSpec(instance=InstanceSpec(n=4, k=2), crowd="noisy")

    def test_as_instance_spec_coerces(self):
        spec = InstanceSpec(n=5, k=2)
        assert as_instance_spec(spec) is spec
        assert as_instance_spec(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            as_instance_spec(42)


class TestExecution:
    def test_run_session_is_deterministic(self):
        spec = SessionSpec(
            instance=InstanceSpec(n=8, k=3, seed=5, params={"width": 0.3}),
            budget=BudgetSpec(5),
            engine=EngineSpec("grid", {"resolution": 256}),
        )
        first = run_session(spec)
        second = run_session(spec)
        assert first.distance_to_truth == second.distance_to_truth
        assert [a.question for a in first.answers] == [
            a.question for a in second.answers
        ]

    def test_prepare_exposes_truth_and_crowd(self):
        spec = SessionSpec(
            instance=InstanceSpec(n=6, k=2, seed=1),
            crowd=CrowdSpec(accuracy=0.8, replication=3),
            engine=EngineSpec("grid", {"resolution": 256}),
        )
        prepared = prepare_session(spec)
        assert len(prepared.distributions) == 6
        assert len(prepared.truth.top_k(2)) == 2
        assert prepared.crowd.replication == 3

    def test_materialize_matches_service_instance_stream(self):
        # The spec's materialization must be the one the service has always
        # used, or resumed event logs would rebuild different instances.
        from repro.utils.rng import derive_seed, ensure_rng
        from repro.workloads.synthetic import uniform_intervals

        spec = InstanceSpec(n=7, k=3, seed=11, params={"width": 0.25})
        expected = uniform_intervals(
            7, width=0.25, rng=ensure_rng(derive_seed(11, "service-instance"))
        )
        assert [d.support for d in spec.materialize()] == [
            d.support for d in expected
        ]

    def test_forced_crowd_model(self):
        spec = SessionSpec(
            instance=InstanceSpec(n=6, k=2, seed=3),
            crowd=CrowdSpec(model="adversarial"),
            budget=BudgetSpec(3),
            engine=EngineSpec("grid", {"resolution": 256}),
        )
        prepared = prepare_session(spec)
        assert all(w.accuracy == 0.0 for w in prepared.crowd.workers)


# ----------------------------------------------------------------------
# Serve / store deployment specs
# ----------------------------------------------------------------------


class TestStoreSpec:
    def test_round_trip_identity(self):
        from repro.api import StoreSpec

        spec = StoreSpec(
            backend="disk-npz", hot_capacity=8, path="/tmp/cold"
        )
        assert StoreSpec.from_dict(spec.to_dict()) == spec
        assert StoreSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_backend_name_shorthand(self):
        from repro.api import StoreSpec

        spec = StoreSpec.from_dict("memory")
        assert spec.backend == "memory"
        assert spec.hot_capacity == 64

    def test_content_key_is_byte_stable(self):
        from repro.api import StoreSpec

        a = StoreSpec(backend="memory", hot_capacity=8)
        b = StoreSpec.from_dict(
            {"hot_capacity": 8, "backend": "memory"}
        )
        assert a.content_key() == b.content_key()
        assert a.canonical_json() == b.canonical_json()

    def test_unknown_backend_suggests(self):
        from repro.api import StoreSpec
        from repro.api.registry import UnknownNameError

        with pytest.raises(UnknownNameError, match="disk-npz"):
            StoreSpec(backend="disk_npz")

    def test_disk_backend_requires_path(self):
        from repro.api import StoreSpec

        with pytest.raises(ValueError, match="path"):
            StoreSpec(backend="disk-npz")

    def test_negative_hot_capacity_rejected(self):
        from repro.api import StoreSpec

        with pytest.raises(ValueError):
            StoreSpec(hot_capacity=-1)

    def test_build_none_is_bare_cache(self):
        from repro.api import StoreSpec
        from repro.service.cache import TPOCache

        store = StoreSpec(backend="none", hot_capacity=3).build()
        assert isinstance(store, TPOCache)
        assert store.capacity == 3

    def test_build_backend_is_two_tier(self, tmp_path):
        from repro.api import StoreSpec
        from repro.service.store import DiskNpzColdTier, TwoTierStore

        store = StoreSpec(
            backend="disk-npz", hot_capacity=3, path=str(tmp_path)
        ).build()
        assert isinstance(store, TwoTierStore)
        assert isinstance(store.cold, DiskNpzColdTier)
        assert store.hot.capacity == 3


class TestServeSpec:
    def test_round_trip_identity(self):
        from repro.api import ServeSpec

        spec = ServeSpec(
            host="0.0.0.0",
            port=9999,
            workers=4,
            store={"backend": "disk-npz", "path": "/tmp/cold"},
            log="/tmp/events.jsonl",
            resolution=512,
        )
        assert ServeSpec.from_dict(spec.to_dict()) == spec
        assert ServeSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_defaults_are_the_historical_single_process_service(self):
        from repro.api import ServeSpec

        spec = ServeSpec()
        assert spec.workers == 1
        assert spec.store.backend == "none"
        assert spec.shard_by == "blake2b"

    def test_store_dict_and_shorthand_coerced(self, tmp_path):
        from repro.api import ServeSpec, StoreSpec

        spec = ServeSpec(
            workers=2,
            store={"backend": "disk-npz", "path": str(tmp_path)},
        )
        assert isinstance(spec.store, StoreSpec)
        shorthand = ServeSpec(store="memory")
        assert shorthand.store.backend == "memory"

    def test_fleet_requires_cross_process_store(self):
        from repro.api import ServeSpec

        for backend in ("none", "memory"):
            with pytest.raises(ValueError, match="cross-process"):
                ServeSpec(workers=2, store=backend)

    def test_invalid_fields_rejected(self):
        from repro.api import ServeSpec

        with pytest.raises(ValueError):
            ServeSpec(port=70000)
        with pytest.raises(ValueError):
            ServeSpec(workers=0)
        with pytest.raises(ValueError):
            ServeSpec(shard_by="round-robin")
        with pytest.raises(ValueError):
            ServeSpec(resolution=1)

    def test_unknown_fields_rejected(self):
        from repro.api import ServeSpec

        with pytest.raises(ValueError, match="wokers"):
            ServeSpec.from_dict({"wokers": 2})

    def test_content_key_is_byte_stable(self):
        from repro.api import ServeSpec

        a = ServeSpec(port=8080, workers=1)
        b = ServeSpec.from_dict({"workers": 1, "port": 8080})
        assert a.content_key() == b.content_key()
