"""Tests for the generic plugin registry subsystem."""

import pytest

from repro.api import all_registries
from repro.api.registry import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
)


@pytest.fixture
def registry():
    r = Registry("widget")
    r.register("alpha", lambda **kw: ("alpha", kw))
    r.register("beta", lambda **kw: ("beta", kw))
    return r


class TestRegistration:
    def test_register_and_create(self, registry):
        assert registry.create("alpha", size=3) == ("alpha", {"size": 3})

    def test_decorator_form(self, registry):
        @registry.register("gamma")
        def gamma(**kw):
            return ("gamma", kw)

        assert registry.create("gamma") == ("gamma", {})

    def test_collision_detected(self, registry):
        with pytest.raises(DuplicateNameError, match="already registered"):
            registry.register("alpha", lambda: None)

    def test_collision_is_a_value_error(self, registry):
        # Legacy callers catch ValueError; the hierarchy must serve them.
        with pytest.raises(ValueError):
            registry.register("alpha", lambda: None)

    def test_overwrite_allowed_explicitly(self, registry):
        registry.register("alpha", lambda **kw: "replaced", overwrite=True)
        assert registry.create("alpha") == "replaced"

    def test_bad_names_and_factories_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.register("", lambda: None)
        with pytest.raises(RegistryError):
            registry.register("x", "not-a-dotted-path")

    def test_unregister(self, registry):
        registry.unregister("beta")
        assert "beta" not in registry
        with pytest.raises(UnknownNameError):
            registry.unregister("beta")


class TestLazyResolution:
    def test_dotted_path_resolves_on_first_get(self):
        r = Registry("measure")
        r.register("H", "repro.uncertainty.entropy:EntropyMeasure")
        from repro.uncertainty.entropy import EntropyMeasure

        assert r.get("H") is EntropyMeasure
        assert isinstance(r.create("H"), EntropyMeasure)


class TestUnknownNames:
    def test_close_match_suggested(self, registry):
        with pytest.raises(UnknownNameError, match="did you mean 'alpha'"):
            registry.get("alpa")

    def test_suggestions_recorded_on_error(self, registry):
        try:
            registry.get("alpa")
        except UnknownNameError as exc:
            assert exc.suggestions == ["alpha"]
            assert exc.available == ["alpha", "beta"]

    def test_no_suggestion_still_lists_available(self, registry):
        with pytest.raises(UnknownNameError, match=r"available: \['alpha'"):
            registry.get("zzzzz")

    def test_error_is_both_value_and_key_error(self, registry):
        with pytest.raises(ValueError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_catalog_suggestions(self):
        # The satellite-task acceptance examples from the issue.
        from repro.api import MEASURES, POLICIES

        with pytest.raises(UnknownNameError, match="did you mean 'Hw'"):
            MEASURES.create("hw")
        with pytest.raises(UnknownNameError, match="did you mean 'T1-on'"):
            POLICIES.create("t1")


class TestMappingProtocol:
    def test_iteration_membership_indexing(self, registry):
        assert sorted(registry) == ["alpha", "beta"]
        assert "alpha" in registry and "nope" not in registry
        assert len(registry) == 2
        assert registry["alpha"] is registry.get("alpha")

    def test_available_is_sorted(self, registry):
        registry.register("aaa", lambda: None)
        assert registry.available() == ["aaa", "alpha", "beta"]


class TestCatalog:
    def test_every_registry_enumerable(self):
        registries = all_registries()
        assert set(registries) == {
            "policies",
            "measures",
            "workloads",
            "scenarios",
            "crowd_models",
            "distributions",
            "engines",
            "stores",
            "evals",
            "lint_rules",
            "checks",
        }
        for registry in registries.values():
            assert len(registry) > 0

    def test_every_built_in_factory_resolves(self):
        for registry in all_registries().values():
            for name in registry:
                assert callable(registry.get(name))
