"""Tests for the classical uncertain top-K semantics."""

import numpy as np
import pytest

from repro.tpo import (
    GridBuilder,
    answer_report,
    expected_ranks,
    pt_k,
    u_kranks,
    u_topk,
)
from repro.tpo.space import OrderingSpace


@pytest.fixture
def space():
    """Hand-built space: [0,1] 0.5 | [1,0] 0.2 | [0,2] 0.3 over 4 tuples."""
    return OrderingSpace.from_orderings(
        [[0, 1], [1, 0], [0, 2]], [0.5, 0.2, 0.3], 4
    )


class TestUTopK:
    def test_modal_vector(self, space):
        vector, probability = u_topk(space)
        np.testing.assert_array_equal(vector, [0, 1])
        assert probability == pytest.approx(0.5)

    def test_certain_space(self):
        certain = OrderingSpace.from_orderings([[2, 1]], [1.0], 3)
        vector, probability = u_topk(certain)
        np.testing.assert_array_equal(vector, [2, 1])
        assert probability == 1.0


class TestUKRanks:
    def test_per_rank_winners(self, space):
        winners = u_kranks(space)
        # Rank 0: t0 holds it with 0.8; rank 1: t1 with 0.5.
        assert winners[0] == (0, pytest.approx(0.8))
        assert winners[1] == (1, pytest.approx(0.5))

    def test_winners_can_repeat(self):
        # t0 is the likeliest at BOTH ranks in this contrived space.
        space = OrderingSpace.from_orderings(
            [[0, 1], [2, 0], [1, 2]], [0.45, 0.45, 0.10], 3
        )
        winners = u_kranks(space)
        assert winners[0][0] == 0
        assert winners[1][0] == 0


class TestPTK:
    def test_membership_probabilities(self, space):
        rows = dict(pt_k(space, threshold=0.0))
        assert rows[0] == pytest.approx(1.0)
        assert rows[1] == pytest.approx(0.7)
        assert rows[2] == pytest.approx(0.3)
        assert 3 not in rows

    def test_threshold_filters(self, space):
        rows = pt_k(space, threshold=0.5)
        assert [t for t, _ in rows] == [0, 1]

    def test_threshold_validated(self, space):
        with pytest.raises(ValueError):
            pt_k(space, threshold=1.5)

    def test_sorted_by_probability(self, space):
        rows = pt_k(space, threshold=0.0)
        probabilities = [p for _, p in rows]
        assert probabilities == sorted(probabilities, reverse=True)


class TestExpectedRanks:
    def test_ordering(self, space):
        rows = expected_ranks(space)
        assert rows[0][0] == 0  # t0 clearly first
        # t0: 0.8·0 + 0.2·1 = 0.2
        assert rows[0][1] == pytest.approx(0.2)

    def test_only_present_tuples(self, space):
        assert all(t in {0, 1, 2} for t, _ in expected_ranks(space))


class TestReport:
    def test_report_mentions_all_semantics(self, space):
        text = answer_report(space)
        assert "U-Top-2" in text
        assert "U-kRanks" in text
        assert "PT-2" in text
        assert "expected ranks" in text

    def test_report_on_built_tree(self, overlapping_uniforms):
        space = GridBuilder(resolution=400).build(overlapping_uniforms, 3).to_space()
        text = answer_report(space, threshold=0.2)
        assert "rank1=" in text


class TestConsistencyAcrossSemantics:
    def test_utopk_head_agrees_with_ukranks_when_dominant(self):
        """With one dominant ordering all semantics agree on rank 1."""
        space = OrderingSpace.from_orderings(
            [[3, 1, 0], [3, 0, 1]], [0.9, 0.1], 4
        )
        vector, _ = u_topk(space)
        assert u_kranks(space)[0][0] == int(vector[0]) == 3
        # PT-k is a set semantics: all three tuples are certain members
        # here, so we only require t3's membership, not its position.
        assert 3 in {t for t, _ in pt_k(space, 0.5)}
        assert expected_ranks(space)[0][0] == 3
