"""Tests of the flat level-table tree internals and compat views."""

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.tpo import GridBuilder, MonteCarloBuilder, TPOTree
from repro.tpo.node import ROOT_TUPLE
from repro.tpo.serialize import tree_from_dict, tree_to_dict


class TestLevelTable:
    def test_append_level_validates_alignment(self, overlapping_uniforms):
        tree = TPOTree(overlapping_uniforms, 2)
        with pytest.raises(ValueError, match="aligned"):
            tree.append_level([0, 1], [0], [0.5, 0.5])

    def test_append_level_validates_parent_range(self, overlapping_uniforms):
        tree = TPOTree(overlapping_uniforms, 2)
        with pytest.raises(ValueError, match="parent indices"):
            tree.append_level([0], [3], [1.0])

    def test_append_level_requires_parent_major_order(
        self, overlapping_uniforms
    ):
        tree = TPOTree(overlapping_uniforms, 3)
        tree.append_level([0, 1], [0, 0], [0.5, 0.5])
        with pytest.raises(ValueError, match="non-decreasing"):
            tree.append_level([1, 0], [1, 0], [0.5, 0.5])

    def test_paths_at_depth_matches_views(self, small_tree):
        for depth in range(1, small_tree.built_depth + 1):
            paths = small_tree.paths_at_depth(depth)
            prefixes = [
                node.prefix() for node in small_tree.nodes_at_depth(depth)
            ]
            assert [tuple(row) for row in paths.tolist()] == prefixes

    def test_views_walk_like_pointers(self, small_tree):
        root = small_tree.root
        assert root.is_root and root.tuple_index == ROOT_TUPLE
        child = root.children[0]
        assert child.parent.is_root
        assert child.depth == 1
        grandchildren = child.children
        assert all(g.parent.tuple_index == child.tuple_index for g in grandchildren)
        leaves = small_tree.leaves()
        assert all(leaf.is_leaf for leaf in leaves)
        # Pre-order traversal covers every non-root node exactly once.
        visited = sum(1 for _ in small_tree.iter_nodes())
        assert visited == small_tree.node_count()

    def test_state_is_always_none_on_views(self, small_tree):
        for node in small_tree.iter_nodes():
            assert node.state is None


class TestPruneFrontierInterplay:
    """Extending after pruning must match pruning the full tree.

    This pins the engine-cache compaction hook: pruning a partial tree
    filters the frontier-aligned builder payload (grid prefix densities,
    MC sample assignments), so subsequent extensions see a consistent
    frontier.
    """

    @pytest.mark.parametrize(
        "builder_factory",
        [
            lambda: GridBuilder(resolution=400),
            lambda: MonteCarloBuilder(samples=30000, seed=3),
        ],
        ids=["grid", "mc"],
    )
    def test_prune_then_extend_equals_extend_then_prune(
        self, overlapping_uniforms, builder_factory
    ):
        k = 3
        full = builder_factory().build(overlapping_uniforms, k)
        decided = None
        probe = full.to_space()
        for i, j in [(0, 1), (1, 2), (2, 3), (0, 2)]:
            codes = probe.agreement_codes(i, j)
            if (codes == -1).any() and (codes != -1).any():
                decided = (i, j)
                break
        if decided is None:
            pytest.skip("instance offers no partially decided pair")
        i, j = decided
        full.prune_with_answer(i, j, True)
        full_space = full.to_space()

        builder = builder_factory()
        partial = builder.start(overlapping_uniforms, k)
        builder.extend(partial)
        builder.extend(partial)
        partial.prune_with_answer(i, j, True)
        builder.extend(partial)
        # Replay the answer: deeper levels can reintroduce the loser.
        partial.prune_with_answer(i, j, True)
        partial_space = partial.to_space()

        assert (
            {tuple(p) for p in full_space.paths.tolist()}
            == {tuple(p) for p in partial_space.paths.tolist()}
        )
        full_map = {
            tuple(p): v
            for p, v in zip(full_space.paths.tolist(), full_space.probabilities, strict=True)
        }
        for path, value in zip(
            partial_space.paths.tolist(), partial_space.probabilities
        , strict=True):
            assert value == pytest.approx(full_map[tuple(path)], abs=1e-9)


class TestSerializeFlatRoundTrip:
    def test_wire_format_is_unchanged(self, small_tree):
        payload = tree_to_dict(small_tree)
        assert set(payload) == {"k", "n_tuples", "built_depth", "root"}
        assert payload["root"]["tuple"] == -1
        assert payload["root"]["p"] == 1.0
        first = payload["root"]["children"][0]
        assert set(first) == {"tuple", "p", "children"}

    def test_built_depth_mismatch_is_rejected(
        self, small_tree, overlapping_uniforms
    ):
        payload = tree_to_dict(small_tree)
        payload["built_depth"] = small_tree.built_depth + 1
        with pytest.raises(ValueError, match="built_depth"):
            tree_from_dict(payload, overlapping_uniforms)

    def test_round_trip_preserves_level_tables(self, small_tree):
        rebuilt = tree_from_dict(
            tree_to_dict(small_tree), small_tree.distributions
        )
        for level, other in zip(small_tree.levels, rebuilt.levels, strict=True):
            np.testing.assert_array_equal(level.tuple_ids, other.tuple_ids)
            np.testing.assert_array_equal(level.parent_idx, other.parent_idx)
            np.testing.assert_allclose(level.probs, other.probs)


def test_empty_tree_counts():
    tree = TPOTree([Uniform(0, 1), Uniform(0, 1)], 2)
    assert tree.built_depth == 0
    assert tree.node_count() == 0
    assert tree.ordering_count() == 1  # the empty prefix
    assert tree.prune_with_answer(0, 1, True) == 0
