"""Property-based tests of TPO construction over random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Uniform
from repro.tpo import GridBuilder, MonteCarloBuilder


@st.composite
def uniform_workloads(draw):
    """3–6 uniform intervals with assorted overlap."""
    n = draw(st.integers(min_value=3, max_value=6))
    centers = [
        draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        for _ in range(n)
    ]
    width = draw(st.floats(min_value=0.05, max_value=0.6, allow_nan=False))
    return [Uniform(c, c + width) for c in centers]


@given(uniform_workloads(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_grid_tree_invariants(dists, k):
    k = min(k, len(dists))
    tree = GridBuilder(resolution=400).build(dists, k)
    tree.validate(tolerance=1e-4)
    space = tree.to_space()
    assert abs(space.probabilities.sum() - 1.0) < 1e-9
    # No path repeats a tuple, and paths are unique.
    seen = set()
    for path in space.paths:
        key = tuple(int(t) for t in path)
        assert len(set(key)) == len(key)
        assert key not in seen
        seen.add(key)


@given(uniform_workloads(), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_grid_and_mc_agree_on_top1_mass(dists, k):
    """The two numeric engines agree on level-1 probabilities."""
    k = min(k, len(dists))
    grid_space = GridBuilder(resolution=600).build(dists, k).to_space()
    mc_space = (
        MonteCarloBuilder(samples=60000, seed=7).build(dists, k).to_space()
    )
    _, grid_level1 = grid_space.prefix_groups(1)
    grid_top = {
        int(p[0]): m for p, m in zip(*grid_space.prefix_groups(1), strict=True)
    }
    mc_top = {int(p[0]): m for p, m in zip(*mc_space.prefix_groups(1), strict=True)}
    for tuple_index in set(grid_top) | set(mc_top):
        assert grid_top.get(tuple_index, 0.0) == pytest.approx(
            mc_top.get(tuple_index, 0.0), abs=0.02
        )


@given(uniform_workloads())
@settings(max_examples=20, deadline=None)
def test_deeper_trees_refine_shallower(dists):
    """Level-k prefix masses of T_{k+1} match the level-k tree.

    Resolution 1600 keeps the midpoint-rule error of the narrowest
    admissible interval (width 0.05) well inside the 1e-4 tolerance;
    at 400 hypothesis can find workloads whose integration error alone
    exceeds it (e.g. width-0.125 pdfs far from the overlap cluster).
    """
    builder = GridBuilder(resolution=1600)
    shallow = builder.build(dists, 1).to_space()
    deep = builder.build(dists, min(2, len(dists))).to_space()
    shallow_masses = {
        int(p[0]): m for p, m in zip(*shallow.prefix_groups(1), strict=True)
    }
    deep_masses = {int(p[0]): m for p, m in zip(*deep.prefix_groups(1), strict=True)}
    for tuple_index in set(shallow_masses) | set(deep_masses):
        # Agreement is bounded by the midpoint-rule integration error of
        # the deeper level plus renormalization, not machine precision.
        assert shallow_masses.get(tuple_index, 0.0) == pytest.approx(
            deep_masses.get(tuple_index, 0.0), abs=1e-4
        )


@given(
    uniform_workloads(),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_pruning_monotone_under_random_answers(dists, seed):
    """Applying any sequence of consistent answers never widens the space."""
    rng = np.random.default_rng(seed)
    k = min(3, len(dists))
    space = GridBuilder(resolution=300).build(dists, k).to_space()
    truth_scores = [float(np.atleast_1d(d.sample(rng, 1))[0]) for d in dists]
    order = np.argsort(-np.asarray(truth_scores))
    rank = {int(t): r for r, t in enumerate(order)}
    size = space.size
    for _ in range(4):
        i, j = rng.choice(len(dists), size=2, replace=False)
        holds = rank[int(i)] < rank[int(j)]
        try:
            space = space.condition(int(i), int(j), holds)
        except Exception:
            break
        assert space.size <= size
        size = space.size
