"""Tests for TPO serialization."""

import json

import pytest

from repro.tpo import (
    GridBuilder,
    tree_from_dict,
    tree_to_dict,
    tree_to_dot,
)


@pytest.fixture
def tree(overlapping_uniforms):
    return GridBuilder(resolution=400).build(overlapping_uniforms, 2)


def test_dict_roundtrip_preserves_structure(tree, overlapping_uniforms):
    payload = tree_to_dict(tree)
    rebuilt = tree_from_dict(payload, overlapping_uniforms)
    assert rebuilt.k == tree.k
    assert rebuilt.built_depth == tree.built_depth
    assert rebuilt.ordering_count() == tree.ordering_count()
    original = {
        tuple(leaf.prefix()): leaf.probability for leaf in tree.leaves()
    }
    restored = {
        tuple(leaf.prefix()): leaf.probability for leaf in rebuilt.leaves()
    }
    assert original.keys() == restored.keys()
    for path in original:
        assert restored[path] == pytest.approx(original[path])


def test_dict_is_json_serializable(tree):
    text = json.dumps(tree_to_dict(tree))
    assert '"k":' in text


def test_rebuilt_tree_supports_pruning(tree, overlapping_uniforms):
    rebuilt = tree_from_dict(tree_to_dict(tree), overlapping_uniforms)
    space = rebuilt.to_space()
    codes = space.agreement_codes(0, 1)
    if (codes == -1).any() and (codes != -1).any():
        rebuilt.prune_with_answer(0, 1, True)
        rebuilt.validate()


def test_dot_output_mentions_tuples(tree):
    dot = tree_to_dot(tree, labels=["a", "b", "c", "d", "e"])
    assert dot.startswith("digraph TPO")
    assert "a\\np=" in dot or "b\\np=" in dot
    assert dot.rstrip().endswith("}")


def test_dot_truncation():
    from repro.distributions import Uniform

    dists = [Uniform(0, 1) for _ in range(5)]
    tree = GridBuilder(resolution=200).build(dists, 3)
    dot = tree_to_dot(tree, max_nodes=5)
    assert "truncated" in dot
