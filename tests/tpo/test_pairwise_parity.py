"""Parity of the rank-accumulation pairwise statistics with the old dense
``(L, N, N)`` einsum formulation (which blew up memory at large ``L``)."""

import numpy as np
import pytest

from repro.rank.kendall import stance_marginals
from repro.tpo.space import OrderingSpace


def random_space(seed: int, n: int = 8, k: int = 4, count: int = 40):
    rng = np.random.default_rng(seed)
    paths = np.unique(
        np.array([rng.permutation(n)[:k] for _ in range(count)]), axis=0
    )
    return OrderingSpace(paths, rng.random(paths.shape[0]) + 1e-3, n)


def dense_pairwise_preference(space: OrderingSpace) -> np.ndarray:
    """The seed's einsum implementation, kept as the reference."""
    pos = space.positions().astype(np.int64)
    p = space.probabilities
    less = pos[:, :, None] < pos[:, None, :]
    equal = pos[:, :, None] == pos[:, None, :]
    w = np.einsum("l,lij->ij", p, less.astype(float))
    w += 0.5 * np.einsum("l,lij->ij", p, equal.astype(float))
    np.fill_diagonal(w, 0.0)
    return w


def dense_stance_marginals(space: OrderingSpace):
    pos = space.positions().astype(np.int64)
    p = space.probabilities
    less = pos[:, :, None] < pos[:, None, :]
    greater = pos[:, :, None] > pos[:, None, :]
    p_plus = np.einsum("l,lij->ij", p, less.astype(float))
    p_minus = np.einsum("l,lij->ij", p, greater.astype(float))
    p_zero = np.clip(1.0 - p_plus - p_minus, 0.0, 1.0)
    for m in (p_plus, p_minus, p_zero):
        np.fill_diagonal(m, 0.0)
    return p_plus, p_minus, p_zero


@pytest.mark.parametrize("seed", range(6))
def test_pairwise_preference_matches_dense_reference(seed):
    space = random_space(seed)
    np.testing.assert_allclose(
        space.pairwise_preference(),
        dense_pairwise_preference(space),
        rtol=0.0,
        atol=1e-12,
    )


@pytest.mark.parametrize("seed", range(6))
def test_stance_marginals_match_dense_reference(seed):
    space = random_space(seed)
    for ours, reference in zip(
        stance_marginals(space), dense_stance_marginals(space)
    , strict=True):
        np.testing.assert_allclose(ours, reference, rtol=0.0, atol=1e-12)


def test_pairwise_preference_complementarity():
    space = random_space(99)
    w = space.pairwise_preference()
    off_diagonal = ~np.eye(space.n_tuples, dtype=bool)
    np.testing.assert_allclose(
        (w + w.T)[off_diagonal], 1.0, rtol=0.0, atol=1e-12
    )


@pytest.mark.parametrize("seed", range(4))
def test_stance_matrix_matches_agreement_codes(seed):
    space = random_space(seed, n=6, k=3, count=20)
    pairs = [
        (i, j)
        for i in range(space.n_tuples)
        for j in range(space.n_tuples)
        if i != j
    ]
    i_indices = [i for i, _ in pairs]
    j_indices = [j for _, j in pairs]
    stances = space.stance_matrix(i_indices, j_indices)
    assert stances.shape == (space.size, len(pairs))
    assert stances.dtype == np.int8
    for column, (i, j) in enumerate(pairs):
        np.testing.assert_array_equal(
            stances[:, column], space.agreement_codes(i, j)
        )
