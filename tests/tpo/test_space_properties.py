"""Property-based tests for ordering-space invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpo.space import DegenerateSpaceError, OrderingSpace


@st.composite
def spaces(draw):
    """Random weighted top-K prefix spaces over a small universe."""
    n = draw(st.integers(min_value=2, max_value=6))
    k = draw(st.integers(min_value=1, max_value=n))
    count = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    paths = np.array([rng.permutation(n)[:k] for _ in range(count)])
    paths = np.unique(paths, axis=0)
    probs = rng.random(paths.shape[0]) + 1e-3
    return OrderingSpace(paths, probs, n)


@given(spaces())
@settings(max_examples=80, deadline=None)
def test_probabilities_normalized(space):
    assert abs(space.probabilities.sum() - 1.0) < 1e-9
    assert (space.probabilities >= 0).all()


@given(spaces())
@settings(max_examples=80, deadline=None)
def test_positions_consistent_with_paths(space):
    pos = space.positions()
    for row, path in enumerate(space.paths):
        for rank, tuple_index in enumerate(path):
            assert pos[row, tuple_index] == rank
    # Absent tuples carry the sentinel.
    assert (pos <= space.depth).all()


@given(spaces(), st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
@settings(max_examples=80, deadline=None)
def test_agreement_codes_antisymmetric(space, i, j):
    i %= space.n_tuples
    j %= space.n_tuples
    if i == j:
        return
    codes_ij = space.agreement_codes(i, j)
    codes_ji = space.agreement_codes(j, i)
    np.testing.assert_array_equal(codes_ij, -codes_ji)


@given(spaces(), st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
@settings(max_examples=80, deadline=None)
def test_conditioning_never_increases_support(space, i, j):
    i %= space.n_tuples
    j %= space.n_tuples
    if i == j:
        return
    for holds in (True, False):
        try:
            conditioned = space.condition(i, j, holds)
        except DegenerateSpaceError:
            continue
        assert conditioned.size <= space.size
        assert abs(conditioned.probabilities.sum() - 1.0) < 1e-9
        forbidden = -1 if holds else 1
        assert (conditioned.agreement_codes(i, j) != forbidden).all()


@given(spaces(), st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_yes_and_no_masses_cover_space(space, i, j):
    """Every path survives at least one of the two answers."""
    i %= space.n_tuples
    j %= space.n_tuples
    if i == j:
        return
    codes = space.agreement_codes(i, j)
    surviving_yes = codes != -1
    surviving_no = codes != 1
    assert (surviving_yes | surviving_no).all()


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_prefix_groups_masses_sum_to_one(space):
    for depth in range(1, space.depth + 1):
        _, masses = space.prefix_groups(depth)
        assert abs(masses.sum() - 1.0) < 1e-9


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_pairwise_preference_complementary(space):
    w = space.pairwise_preference()
    off = ~np.eye(space.n_tuples, dtype=bool)
    np.testing.assert_allclose((w + w.T)[off], 1.0, atol=1e-9)


@given(spaces())
@settings(max_examples=60, deadline=None)
def test_rank_marginals_are_distributions(space):
    marginals = space.rank_marginals()
    np.testing.assert_allclose(marginals.sum(axis=0), 1.0, atol=1e-9)
    assert (marginals >= -1e-12).all()
