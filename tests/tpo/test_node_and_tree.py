"""Tests for TPO nodes and tree structure."""

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.tpo import GridBuilder, TPONode, TPOTree
from repro.tpo.node import ROOT_TUPLE
from repro.tpo.space import DegenerateSpaceError


class TestNode:
    def test_prefix_and_depth(self):
        root = TPONode(ROOT_TUPLE, 1.0)
        a = root.add_child(3, 0.6)
        b = a.add_child(1, 0.4)
        assert root.is_root and root.depth == 0
        assert b.prefix() == (3, 1)
        assert b.depth == 2
        assert a.children == [b]

    def test_remove_child(self):
        root = TPONode(ROOT_TUPLE, 1.0)
        child = root.add_child(0, 1.0)
        root.remove_child(child)
        assert root.is_leaf
        assert child.parent is None

    def test_iter_subtree_preorder(self):
        root = TPONode(ROOT_TUPLE, 1.0)
        a = root.add_child(0, 0.5)
        b = root.add_child(1, 0.5)
        a.add_child(2, 0.5)
        visited = [n.tuple_index for n in root.iter_subtree()]
        assert visited == [ROOT_TUPLE, 0, 2, 1]

    def test_clear_state(self):
        root = TPONode(ROOT_TUPLE, 1.0)
        child = root.add_child(0, 1.0)
        child.state = np.ones(3)
        root.clear_state()
        assert child.state is None


@pytest.fixture
def built_tree(overlapping_uniforms):
    return GridBuilder(resolution=400).build(overlapping_uniforms, 3)


class TestTree:
    def test_validation_of_arguments(self, overlapping_uniforms):
        with pytest.raises(ValueError):
            TPOTree(overlapping_uniforms, 0)
        with pytest.raises(ValueError):
            TPOTree([], 2)

    def test_k_clamped_to_n(self):
        tree = TPOTree([Uniform(0, 1), Uniform(0.5, 1.5)], 10)
        assert tree.k == 2

    def test_level_masses_are_one(self, built_tree):
        for depth in range(1, built_tree.k + 1):
            assert built_tree.level_mass(depth) == pytest.approx(1.0, abs=1e-6)

    def test_structural_invariants(self, built_tree):
        built_tree.validate()

    def test_node_and_ordering_counts(self, built_tree):
        assert built_tree.ordering_count() == len(built_tree.leaves())
        assert built_tree.node_count() >= built_tree.ordering_count()

    def test_to_space_matches_leaves(self, built_tree):
        space = built_tree.to_space()
        assert space.size == built_tree.ordering_count()
        assert space.depth == built_tree.k
        assert space.probabilities.sum() == pytest.approx(1.0)

    def test_to_space_requires_built_levels(self, overlapping_uniforms):
        with pytest.raises(ValueError):
            TPOTree(overlapping_uniforms, 2).to_space()

    def test_prune_with_answer_removes_disagreeing(self, built_tree):
        space_before = built_tree.to_space()
        codes = space_before.agreement_codes(0, 1)
        if not (codes == -1).any():
            pytest.skip("instance has no disagreeing path for this pair")
        removed = built_tree.prune_with_answer(0, 1, True)
        assert removed > 0
        space_after = built_tree.to_space()
        assert (space_after.agreement_codes(0, 1) != -1).all()
        assert space_after.probabilities.sum() == pytest.approx(1.0)

    def test_prune_contradiction_raises(self, overlapping_uniforms):
        # t4 (top interval) surely beats t0; claiming the opposite on a
        # decided pair kills every ordering.
        tree = GridBuilder(resolution=400).build(overlapping_uniforms, 3)
        space = tree.to_space()
        codes = space.agreement_codes(0, 4)
        if (codes == 1).any():
            pytest.skip("pair not fully decided in this instance")
        with pytest.raises(DegenerateSpaceError):
            tree.prune_with_answer(0, 4, True)

    def test_prune_works_on_partial_trees(self, overlapping_uniforms):
        builder = GridBuilder(resolution=400)
        tree = builder.start(overlapping_uniforms, 3)
        builder.extend(tree)
        builder.extend(tree)  # depth 2 of 3
        assert not tree.is_complete
        tree.prune_with_answer(1, 0, True)
        tree.validate()
        space = tree.to_space()
        assert (space.agreement_codes(1, 0) != -1).all()

    def test_reweight_with_answer_keeps_all_paths(self, built_tree):
        before = built_tree.ordering_count()
        built_tree.reweight_with_answer(0, 1, True, accuracy=0.8)
        assert built_tree.ordering_count() == before
        assert built_tree.level_mass(built_tree.k) == pytest.approx(1.0)

    def test_reweight_shifts_mass_toward_agreement(self, built_tree):
        space_before = built_tree.to_space()
        p_before = space_before.answer_probability(0, 1)
        built_tree.reweight_with_answer(0, 1, True, accuracy=0.9)
        p_after = built_tree.to_space().answer_probability(0, 1)
        assert p_after >= p_before
