"""Tests for the vectorized ordering space."""

import numpy as np
import pytest

from repro.tpo.space import DegenerateSpaceError, OrderingSpace


class TestConstruction:
    def test_normalizes_probabilities(self, toy_space):
        assert toy_space.probabilities.sum() == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(DegenerateSpaceError):
            OrderingSpace(np.zeros((0, 2), dtype=int), np.zeros(0), 4)

    def test_rejects_zero_mass(self):
        with pytest.raises(DegenerateSpaceError):
            OrderingSpace.from_orderings([[0, 1]], [0.0], 4)

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            OrderingSpace.from_orderings([[0, 1]], [-1.0], 4)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            OrderingSpace(np.zeros((2, 2), dtype=int), np.ones(3), 4)


class TestPositions:
    def test_positions_and_sentinel(self, toy_space):
        pos = toy_space.positions()
        assert pos.shape == (4, 4)
        # Path [0,1]: t0 at 0, t1 at 1, t2/t3 absent (= depth).
        np.testing.assert_array_equal(pos[0], [0, 1, 2, 2])
        np.testing.assert_array_equal(pos[3], [2, 2, 0, 1])

    def test_present_tuples(self, toy_space):
        np.testing.assert_array_equal(
            toy_space.present_tuples(), [0, 1, 2, 3]
        )


class TestAgreement:
    def test_codes(self, toy_space):
        codes = toy_space.agreement_codes(0, 1)
        # paths: [0,1]→+1, [1,0]→−1, [0,2]→+1 (1 absent), [2,3]→0
        np.testing.assert_array_equal(codes, [1, -1, 1, 0])

    def test_answer_probability(self, toy_space):
        # decisive mass: yes 0.4+0.2=0.6, no 0.3 → 2/3
        assert toy_space.answer_probability(0, 1) == pytest.approx(0.6 / 0.9)

    def test_answer_probability_uninformative_pair(self):
        space = OrderingSpace.from_orderings([[0, 1]], [1.0], 4)
        assert space.answer_probability(2, 3) == 0.5


class TestConditioning:
    def test_condition_keeps_agreeing_and_silent(self, toy_space):
        conditioned = toy_space.condition(0, 1, True)
        assert conditioned.size == 3  # drops only [1,0]
        np.testing.assert_allclose(
            conditioned.probabilities.sum(), 1.0
        )

    def test_condition_contradiction_raises(self, toy_space):
        only_01 = toy_space.restrict(
            np.array([True, False, False, False])
        )
        with pytest.raises(DegenerateSpaceError):
            only_01.condition(1, 0, True)

    def test_reweight_by_answer_bayes(self, toy_space):
        updated = toy_space.reweight_by_answer(0, 1, True, accuracy=0.8)
        # weights: [0.8, 0.2, 0.8, 0.5]
        raw = np.array([0.4 * 0.8, 0.3 * 0.2, 0.2 * 0.8, 0.1 * 0.5])
        np.testing.assert_allclose(
            updated.probabilities, raw / raw.sum()
        )

    def test_reweight_accuracy_one_is_pruning(self, toy_space):
        soft = toy_space.reweight_by_answer(0, 1, True, accuracy=1.0)
        hard = toy_space.condition(0, 1, True)
        assert soft.probabilities[soft.agreement_codes(0, 1) == -1].sum() == 0
        # Same support up to zero-probability paths.
        assert hard.size <= soft.size

    def test_restrict_full_mask_returns_self(self, toy_space):
        assert toy_space.restrict(np.ones(4, dtype=bool)) is toy_space

    def test_reweight_validates(self, toy_space):
        with pytest.raises(DegenerateSpaceError):
            toy_space.reweight(np.zeros(4))
        with pytest.raises(ValueError):
            toy_space.reweight_by_answer(0, 1, True, accuracy=1.5)


class TestSummaries:
    def test_prefix_groups_level1(self, toy_space):
        prefixes, masses = toy_space.prefix_groups(1)
        lookup = {int(p[0]): m for p, m in zip(prefixes, masses, strict=True)}
        assert lookup[0] == pytest.approx(0.6)
        assert lookup[1] == pytest.approx(0.3)
        assert lookup[2] == pytest.approx(0.1)
        assert masses.sum() == pytest.approx(1.0)

    def test_prefix_groups_validates_depth(self, toy_space):
        with pytest.raises(ValueError):
            toy_space.prefix_groups(0)
        with pytest.raises(ValueError):
            toy_space.prefix_groups(3)

    def test_most_probable_ordering(self, toy_space):
        np.testing.assert_array_equal(
            toy_space.most_probable_ordering(), [0, 1]
        )

    def test_rank_marginals(self, toy_space):
        marginals = toy_space.rank_marginals()
        assert marginals.shape == (4, 2)
        assert marginals[0, 0] == pytest.approx(0.6)
        np.testing.assert_allclose(marginals.sum(axis=0), 1.0)

    def test_pairwise_preference_complementary(self, toy_space):
        w = toy_space.pairwise_preference()
        off = ~np.eye(4, dtype=bool)
        np.testing.assert_allclose((w + w.T)[off], 1.0)

    def test_pairwise_preference_values(self, toy_space):
        w = toy_space.pairwise_preference()
        # Pr(0 ≺ 1): paths 0 (+), 2 (+ via absence), path 3 silent → 0.05
        assert w[0, 1] == pytest.approx(0.4 + 0.2 + 0.05)

    def test_sample_ordering(self, toy_space, rng):
        ordering = toy_space.sample_ordering(rng)
        assert ordering.shape == (2,)

    def test_top_orderings(self, toy_space):
        paths, masses = toy_space.top_orderings(2)
        np.testing.assert_array_equal(paths[0], [0, 1])
        assert masses[0] == pytest.approx(0.4)

    def test_is_certain(self, toy_space):
        assert not toy_space.is_certain
        assert OrderingSpace.from_orderings([[0, 1]], [1.0], 4).is_certain
