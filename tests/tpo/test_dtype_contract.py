"""Regression tests for explicit hot-path dtypes (lint rule RPL005).

Every array the tpo/residual hot paths allocate now names its dtype
instead of riding NumPy defaults.  These tests pin the resulting dtypes
at the public entry points, so a reintroduced bare ``np.zeros(...)`` (or
a platform where the default drifts) fails loudly rather than silently
changing numeric behavior or the level-table contract
(tuple_ids int32 / parent_idx intp / probs float64).
"""

import numpy as np

from repro.questions.candidates import all_pair_questions
from repro.questions.residual import ResidualEvaluator
from repro.tpo.builders import ExactBuilder, GridBuilder, MonteCarloBuilder
from repro.uncertainty.entropy import EntropyMeasure


class TestEngineDefaultsContract:
    """The documented per-engine ``min_probability`` defaults are load-
    bearing: cache keys embed them, so a drifted default silently
    invalidates every stored TPO artifact."""

    def test_grid_default_truncation(self):
        assert GridBuilder().min_probability == 1e-9

    def test_exact_default_truncation(self):
        assert ExactBuilder().min_probability == 1e-12

    def test_mc_keeps_every_sampled_ordering(self):
        assert MonteCarloBuilder(samples=10, seed=0).min_probability == 0.0


class TestSpaceDtypes:
    def test_rank_marginals_is_float64(self, toy_space):
        marginals = toy_space.rank_marginals()
        assert marginals.dtype == np.float64
        assert marginals.shape == (4, 2)

    def test_pairwise_order_masses_are_float64(self, toy_space):
        less, tied_absent = toy_space.pairwise_order_masses()
        assert less.dtype == np.float64
        assert tied_absent.dtype == np.float64


class TestBuilderDtypes:
    def test_built_level_table_contract(self, overlapping_uniforms):
        tree = GridBuilder(resolution=128).build(overlapping_uniforms, 3)
        for level in tree.levels:
            assert level.tuple_ids.dtype == np.int32
            assert level.parent_idx.dtype == np.intp
            assert level.probs.dtype == np.float64

    def test_space_probabilities_are_float64(self, small_space):
        assert small_space.probabilities.dtype == np.float64


class TestResidualDtypes:
    def test_rank_singles_scalar_and_batch_are_float64(self, toy_space):
        evaluator = ResidualEvaluator(EntropyMeasure())
        questions = all_pair_questions(toy_space)
        assert questions, "toy space should have candidate questions"
        scalar = evaluator.rank_singles(toy_space, questions)
        batch = evaluator.rank_singles_batch(toy_space, questions)
        assert scalar.dtype == np.float64
        assert batch.dtype == np.float64
        np.testing.assert_allclose(scalar, batch, atol=1e-9)

    def test_rank_singles_empty_is_float64(self, toy_space):
        evaluator = ResidualEvaluator(EntropyMeasure())
        assert evaluator.rank_singles(toy_space, []).dtype == np.float64
        assert evaluator.rank_singles_batch(toy_space, []).dtype == np.float64
