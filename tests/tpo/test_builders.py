"""Tests for the three TPO construction engines."""

import numpy as np
import pytest

from repro.api import ENGINES
from repro.distributions import PointMass, TruncatedGaussian, Uniform
from repro.tpo import (
    ExactBuilder,
    GridBuilder,
    MonteCarloBuilder,
    TPOSizeError,
    make_builder,
)


def space_map(space):
    """Path → probability dict for engine comparisons."""
    return {
        tuple(int(t) for t in path): float(p)
        for path, p in zip(space.paths, space.probabilities, strict=True)
    }


class TestEngineAgreement:
    """The heart of the substrate's correctness: engines must agree."""

    def test_exact_vs_grid_on_uniforms(self, overlapping_uniforms):
        exact = ExactBuilder().build(overlapping_uniforms, 3).to_space()
        grid = (
            GridBuilder(resolution=2000)
            .build(overlapping_uniforms, 3)
            .to_space()
        )
        exact_probs = space_map(exact)
        grid_probs = space_map(grid)
        for path in set(exact_probs) | set(grid_probs):
            assert exact_probs.get(path, 0.0) == pytest.approx(
                grid_probs.get(path, 0.0), abs=5e-6
            )

    def test_exact_vs_monte_carlo(self, overlapping_uniforms):
        exact = ExactBuilder().build(overlapping_uniforms, 2).to_space()
        mc = (
            MonteCarloBuilder(samples=400000, seed=3)
            .build(overlapping_uniforms, 2)
            .to_space()
        )
        exact_probs = space_map(exact)
        mc_probs = space_map(mc)
        for path, p in exact_probs.items():
            assert mc_probs.get(path, 0.0) == pytest.approx(p, abs=4e-3)

    def test_two_tuples_match_prob_greater(self):
        a, b = Uniform(0.0, 1.0), Uniform(0.4, 1.4)
        for builder in (ExactBuilder(), GridBuilder(resolution=2000)):
            space = builder.build([a, b], 1).to_space()
            probs = space_map(space)
            assert probs[(1,)] == pytest.approx(b.prob_greater(a), abs=1e-6)
            assert probs[(0,)] == pytest.approx(a.prob_greater(b), abs=1e-6)


class TestTreeShape:
    def test_disjoint_supports_give_single_ordering(self):
        dists = [Uniform(i, i + 0.5) for i in range(4)]
        tree = GridBuilder().build(dists, 4)
        space = tree.to_space()
        assert space.size == 1
        np.testing.assert_array_equal(space.paths[0], [3, 2, 1, 0])

    def test_identical_supports_give_all_orderings(self):
        dists = [Uniform(0, 1) for _ in range(3)]
        tree = GridBuilder().build(dists, 3)
        space = tree.to_space()
        assert space.size == 6  # 3! permutations
        np.testing.assert_allclose(space.probabilities, 1 / 6, atol=1e-6)

    def test_point_masses_are_supported(self):
        dists = [PointMass(0.2), Uniform(0.0, 1.0), PointMass(0.8)]
        tree = GridBuilder(resolution=2000).build(dists, 3)
        space = tree.to_space()
        # Orderings must respect 0.8 > 0.2 for the two certain tuples.
        for path in space.paths:
            ranks = {int(t): r for r, t in enumerate(path)}
            assert ranks[2] < ranks[0]

    def test_gaussian_tree_builds(self):
        dists = [TruncatedGaussian(m, 0.1) for m in (0.3, 0.4, 0.55)]
        tree = GridBuilder(resolution=1000).build(dists, 2)
        tree.validate(tolerance=1e-4)

    def test_levels_sum_to_one_all_engines(self, overlapping_uniforms):
        for builder in (
            ExactBuilder(),
            GridBuilder(resolution=800),
            MonteCarloBuilder(samples=50000, seed=0),
        ):
            tree = builder.build(overlapping_uniforms, 3)
            for depth in range(1, 4):
                assert tree.level_mass(depth) == pytest.approx(1.0, abs=1e-5)


class TestIncrementalExtension:
    def test_extend_level_by_level(self, overlapping_uniforms):
        builder = GridBuilder(resolution=500)
        tree = builder.start(overlapping_uniforms, 3)
        assert tree.built_depth == 0
        for expected in (1, 2, 3):
            builder.extend(tree)
            assert tree.built_depth == expected
        assert tree.is_complete
        tree.renormalize()
        # Same leaves as one-shot build.
        oneshot = GridBuilder(resolution=500).build(overlapping_uniforms, 3)
        assert tree.ordering_count() == oneshot.ordering_count()

    def test_extend_past_k_is_noop(self, overlapping_uniforms):
        builder = GridBuilder(resolution=400)
        tree = builder.build(overlapping_uniforms, 2)
        count = tree.ordering_count()
        builder.extend(tree)
        assert tree.ordering_count() == count

    def test_parent_states_are_freed(self, overlapping_uniforms):
        builder = GridBuilder(resolution=400)
        tree = builder.start(overlapping_uniforms, 3)
        builder.extend(tree)
        builder.extend(tree)
        for node in tree.nodes_at_depth(1):
            assert node.state is None


class TestGuards:
    def test_max_orderings_guard(self):
        dists = [Uniform(0, 1) for _ in range(8)]
        with pytest.raises(TPOSizeError):
            GridBuilder(resolution=200, max_orderings=100).build(dists, 6)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GridBuilder(resolution=2)
        with pytest.raises(ValueError):
            GridBuilder(min_probability=-1)
        with pytest.raises(ValueError):
            MonteCarloBuilder(samples=0)
        with pytest.raises(ValueError):
            GridBuilder(max_orderings=0)

    def test_engine_registry(self):
        assert isinstance(ENGINES.create("grid"), GridBuilder)
        assert isinstance(ENGINES.create("exact"), ExactBuilder)
        assert isinstance(ENGINES.create("mc"), MonteCarloBuilder)
        with pytest.raises(ValueError):
            ENGINES.create("quantum")

    def test_make_builder_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="ENGINES.create"):
            assert isinstance(make_builder("grid"), GridBuilder)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                make_builder("quantum")


class TestMonteCarloDetails:
    def test_reproducible_with_seed(self, overlapping_uniforms):
        one = MonteCarloBuilder(samples=20000, seed=9).build(
            overlapping_uniforms, 2
        )
        two = MonteCarloBuilder(samples=20000, seed=9).build(
            overlapping_uniforms, 2
        )
        assert space_map(one.to_space()) == space_map(two.to_space())

    def test_probabilities_are_sample_fractions(self, overlapping_uniforms):
        samples = 1000
        tree = MonteCarloBuilder(samples=samples, seed=1).build(
            overlapping_uniforms, 2
        )
        for leaf in tree.leaves():
            assert (leaf.probability * samples) == pytest.approx(
                round(leaf.probability * samples), abs=1e-6
            )
