"""Smoke tests for the engine-construction benchmark (no perf gates)."""

import json

from repro.tpo.bench import leaf_parity, run
from repro.tpo.builders import GridBuilder
from repro.tpo._reference import ReferenceGridBuilder
from repro.workloads import uniform_intervals


def test_smoke_run_passes_and_writes_artifact(tmp_path):
    artifact_path = tmp_path / "BENCH_engines.json"
    failures = run(smoke=True, json_path=str(artifact_path))
    assert failures == 0
    artifact = json.loads(artifact_path.read_text())
    assert artifact["benchmark"] == "bench_engines"
    assert {"git_sha", "date"} <= set(artifact)
    assert artifact["parity"]["within_tolerance"] is True
    assert artifact["gates"]["speedup_floor"] == 4.0
    assert artifact["gates"]["gated"] is False  # smoke: parity gate only


def test_leaf_parity_flags_disagreement():
    workload = uniform_intervals(8, width=0.3, rng=4)
    flat = GridBuilder(resolution=300).build(workload, 3).to_space()
    other = ReferenceGridBuilder(resolution=360).build(workload, 3).to_space()
    report = leaf_parity(flat, flat)
    assert report["within_tolerance"] is True
    cross = leaf_parity(flat, other)
    assert cross["within_tolerance"] is False or cross["max_abs_error"] > 0
