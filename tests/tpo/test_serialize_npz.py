"""Binary (npz) TPO serialization: parity with the JSON wire dict.

The cold tier (:mod:`repro.service.store`) stands on three promises made
by :mod:`repro.tpo.serialize`: npz round-trips are leaf-order-identical
to the source tree, writes are atomic, and torn archives surface as
:class:`TPOSerializationError` (a miss) rather than arbitrary
numpy/zipfile noise.  The property tests drive those promises across
mixed uniform / triangular / histogram / point-mass instances.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Histogram, PointMass, Triangular, Uniform
from repro.service.cache import instance_key
from repro.tpo import GridBuilder
from repro.tpo.serialize import (
    NPZ_FORMAT_VERSION,
    TPOSerializationError,
    tree_from_dict,
    tree_from_npz,
    tree_from_npz_bytes,
    tree_to_dict,
    tree_to_npz,
    tree_to_npz_bytes,
)

KINDS = ("uniform", "triangular", "histogram", "point")


@st.composite
def mixed_instances(draw):
    """A small instance mixing all four distribution families."""
    n = draw(st.integers(min_value=3, max_value=6))
    k = draw(st.integers(min_value=1, max_value=min(3, n)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    kinds = draw(
        st.lists(st.sampled_from(KINDS), min_size=n, max_size=n)
    )
    rng = np.random.default_rng(seed)
    distributions = []
    for kind in kinds:
        lower = float(rng.uniform(0.0, 8.0))
        width = float(rng.uniform(0.3, 3.0))
        if kind == "uniform":
            distributions.append(Uniform(lower, lower + width))
        elif kind == "triangular":
            mode = lower + float(rng.uniform(0.0, 1.0)) * width
            distributions.append(Triangular(lower, mode, lower + width))
        elif kind == "histogram":
            edges = lower + np.linspace(0.0, width, 4)
            masses = rng.random(3) + 0.1
            distributions.append(Histogram(edges, masses / masses.sum()))
        else:
            distributions.append(PointMass(lower))
    return distributions, k


def _leaf_paths(tree):
    return [tuple(leaf.prefix()) for leaf in tree.leaves()]


def _assert_space_parity(rebuilt, reference):
    space, expected = rebuilt.to_space(), reference.to_space()
    np.testing.assert_array_equal(space.paths, expected.paths)
    np.testing.assert_allclose(
        space.probabilities, expected.probabilities, rtol=0, atol=1e-9
    )


@given(mixed_instances())
@settings(max_examples=30, deadline=None)
def test_npz_roundtrip_matches_json_wire_dict(tmp_path_factory, instance):
    """npz and JSON decode to leaf-order-identical, 1e-9-parity trees."""
    distributions, k = instance
    tree = GridBuilder(resolution=220).build(distributions, k)
    path = tmp_path_factory.mktemp("npz") / "tree.npz"
    tree_to_npz(tree, path)

    via_json = tree_from_dict(
        json.loads(json.dumps(tree_to_dict(tree))), distributions
    )
    for rebuilt in (
        tree_from_npz(path, distributions, mmap=True),
        tree_from_npz(path, distributions, mmap=False),
        tree_from_npz_bytes(tree_to_npz_bytes(tree), distributions),
    ):
        assert rebuilt.k == tree.k
        assert rebuilt.built_depth == tree.built_depth
        # Leaf order is identical — not merely set-equal — to the
        # source tree and to the JSON wire path.
        assert _leaf_paths(rebuilt) == _leaf_paths(tree)
        assert _leaf_paths(rebuilt) == _leaf_paths(via_json)
        _assert_space_parity(rebuilt, tree)
        _assert_space_parity(rebuilt, via_json)


@given(mixed_instances())
@settings(max_examples=30, deadline=None)
def test_instance_key_independent_of_serialization(instance):
    """The cache key is a pure function of the canonical instance spec.

    Whether a cached entry was produced by the JSON event-log path or the
    npz cold tier, both processes must address it by byte-identical keys.
    """
    distributions, k = instance
    spec = {
        "n": len(distributions),
        "k": k,
        "families": [type(d).__name__ for d in distributions],
    }
    payload = {"spec": spec, "builder": "grid:220"}
    key = instance_key(payload)
    assert key == instance_key(json.loads(json.dumps(payload)))
    assert key.isalnum()


class TestAtomicWrites:
    def test_no_temporaries_left_behind(self, small_tree, tmp_path):
        tree_to_npz(small_tree, tmp_path / "tree.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["tree.npz"]

    def test_overwrite_replaces_in_place(
        self, small_tree, overlapping_uniforms, tmp_path
    ):
        path = tmp_path / "tree.npz"
        tree_to_npz(small_tree, path)
        tree_to_npz(small_tree, path)
        rebuilt = tree_from_npz(path, overlapping_uniforms)
        assert _leaf_paths(rebuilt) == _leaf_paths(small_tree)

    def test_creates_parent_directories(
        self, small_tree, overlapping_uniforms, tmp_path
    ):
        path = tmp_path / "a" / "b" / "tree.npz"
        tree_to_npz(small_tree, path)
        assert path.exists()


class TestTornFiles:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_truncated_archive_raises(
        self, small_tree, overlapping_uniforms, tmp_path, mmap
    ):
        path = tmp_path / "tree.npz"
        tree_to_npz(small_tree, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TPOSerializationError):
            tree_from_npz(path, overlapping_uniforms, mmap=mmap)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_garbage_bytes_raise(
        self, overlapping_uniforms, tmp_path, mmap
    ):
        path = tmp_path / "tree.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TPOSerializationError):
            tree_from_npz(path, overlapping_uniforms, mmap=mmap)

    def test_torn_bytes_raise(self, small_tree, overlapping_uniforms):
        data = tree_to_npz_bytes(small_tree)
        with pytest.raises(TPOSerializationError):
            tree_from_npz_bytes(data[: len(data) // 2], overlapping_uniforms)

    def test_wrong_tuple_count_raises(
        self, small_tree, overlapping_uniforms, tmp_path
    ):
        path = tmp_path / "tree.npz"
        tree_to_npz(small_tree, path)
        with pytest.raises(TPOSerializationError):
            tree_from_npz(path, overlapping_uniforms[:-1])

    def test_unknown_version_raises(
        self, small_tree, overlapping_uniforms, tmp_path
    ):
        from repro.tpo import serialize

        payload = serialize._npz_payload(small_tree)
        payload["meta"] = payload["meta"].copy()
        payload["meta"][0] = NPZ_FORMAT_VERSION + 1
        path = tmp_path / "tree.npz"
        np.savez(path, **payload)
        with pytest.raises(TPOSerializationError):
            tree_from_npz(path, overlapping_uniforms)


class TestMemmap:
    def test_members_are_memory_mapped(self, small_tree, tmp_path):
        from repro.tpo.serialize import _memmap_npz_members

        path = tmp_path / "tree.npz"
        tree_to_npz(small_tree, path)
        arrays = _memmap_npz_members(path)
        assert arrays  # meta + three arrays per level
        assert all(
            isinstance(array, np.memmap) for array in arrays.values()
        )

    def test_mmap_and_copy_loads_agree(
        self, small_tree, overlapping_uniforms, tmp_path
    ):
        path = tmp_path / "tree.npz"
        tree_to_npz(small_tree, path)
        mapped = tree_from_npz(path, overlapping_uniforms, mmap=True)
        copied = tree_from_npz(path, overlapping_uniforms, mmap=False)
        assert _leaf_paths(mapped) == _leaf_paths(copied)
        _assert_space_parity(mapped, copied)
