"""Tests for the TPO diagnostics helpers."""

import pytest

from repro.distributions import Uniform
from repro.tpo.analysis import (
    overlap_statistics,
    profile_space,
    question_impact_table,
    tuple_volatility,
)
from repro.tpo.space import OrderingSpace
from repro.uncertainty import EntropyMeasure


class TestProfile:
    def test_certain_space_profile(self):
        space = OrderingSpace.from_orderings([[0, 1]], [1.0], 3)
        profile = profile_space(space)
        assert profile.orderings == 1
        assert profile.entropy == 0.0
        assert profile.effective_orderings == pytest.approx(1.0)
        assert profile.contested_pairs == 0

    def test_profile_of_uncertain_space(self, small_space):
        profile = profile_space(small_space)
        assert profile.orderings == small_space.size
        assert profile.entropy > 0
        assert 1 <= profile.most_uncertain_rank <= profile.depth
        assert len(profile.level_entropies) == profile.depth
        # Level entropies never decrease with depth (refinement).
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(
                profile.level_entropies, profile.level_entropies[1:]
            , strict=False)
        )

    def test_format_is_readable(self, small_space):
        text = profile_space(small_space).format()
        assert "orderings" in text
        assert "entropy" in text


class TestQuestionImpact:
    def test_rows_sorted_by_residual(self, small_space):
        rows = question_impact_table(small_space, top=5)
        residuals = [row[1] for row in rows]
        assert residuals == sorted(residuals)

    def test_reduction_consistency(self, small_space):
        current = EntropyMeasure()(small_space)
        for question, residual, reduction in question_impact_table(
            small_space, top=3
        ):
            assert reduction == pytest.approx(current - residual)
            assert reduction >= -1e-9

    def test_top_limits_output(self, small_space):
        assert len(question_impact_table(small_space, top=2)) <= 2


class TestVolatility:
    def test_shape_and_range(self, small_space):
        volatility = tuple_volatility(small_space)
        assert volatility.shape == (small_space.n_tuples,)
        assert (volatility >= -1e-12).all()

    def test_fixed_tuple_has_zero_volatility(self):
        space = OrderingSpace.from_orderings(
            [[0, 1], [0, 2]], [0.5, 0.5], 3
        )
        volatility = tuple_volatility(space)
        assert volatility[0] == pytest.approx(0.0)  # always rank 0
        assert volatility[1] > 0


class TestOverlapStatistics:
    def test_disjoint_workload(self):
        dists = [Uniform(i, i + 0.5) for i in range(4)]
        stats = overlap_statistics(dists)
        assert stats["overlapping_pairs"] == 0
        assert stats["overlap_fraction"] == 0.0

    def test_identical_workload(self):
        dists = [Uniform(0, 1) for _ in range(4)]
        stats = overlap_statistics(dists)
        assert stats["overlap_fraction"] == pytest.approx(1.0)
        assert stats["max_overlap_degree"] == 3

    def test_keys_present(self):
        stats = overlap_statistics([Uniform(0, 1), Uniform(0.5, 1.5)])
        for key in (
            "tuples",
            "overlapping_pairs",
            "overlap_fraction",
            "max_overlap_degree",
            "mean_overlap_degree",
        ):
            assert key in stats
