"""Lazy k-best orderings: streaming == materialized, bit for bit.

``TPOTree.top_orderings_lazy(count)`` must return exactly what sorting
the fully materialized space returns — same paths, same masses, same tie
order — for every count, on every engine, with or without a beam.  The
lazy path's heap keys rely on the renormalized level tables (an internal
node's mass is the IEEE sum of its children, hence ≥ each child), so
this is a genuine end-to-end invariant, not a tautology.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Uniform
from repro.tpo.builders import ExactBuilder, GridBuilder, MonteCarloBuilder

BUILDERS = [
    lambda: GridBuilder(resolution=256),
    lambda: ExactBuilder(),
    lambda: MonteCarloBuilder(samples=15000, seed=9),
]


@st.composite
def uniform_workloads(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    centers = [
        draw(st.floats(min_value=0, max_value=1, allow_nan=False))
        for _ in range(n)
    ]
    width = draw(st.floats(min_value=0.05, max_value=0.7, allow_nan=False))
    return [Uniform(c, c + width) for c in centers]


def assert_lazy_matches_materialized(tree, count):
    space = tree.to_space()
    expected_paths, expected_masses = space.top_orderings(count)
    lazy_paths, lazy_masses = tree.top_orderings_lazy(count)
    assert lazy_paths.shape == expected_paths.shape
    assert np.array_equal(lazy_paths, expected_paths)
    # Bit-for-bit: both sides divide the same partial sums by the same
    # total, so exact float equality is required, not approx.
    assert np.array_equal(lazy_masses, expected_masses)


@given(
    uniform_workloads(),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([0, 1, 2, 3]),
)
@settings(max_examples=30, deadline=None)
def test_lazy_matches_materialized_grid(dists, k, builder_index):
    k = min(k, len(dists))
    if builder_index == 3:
        builder = GridBuilder(resolution=256, beam_epsilon=0.05)
    else:
        builder = BUILDERS[builder_index]()
    tree = builder.build(dists, k)
    size = tree.levels[-1].width
    for count in (0, 1, min(3, size), size, size + 5):
        assert_lazy_matches_materialized(tree, count)


class TestLazyIteration:
    @pytest.fixture
    def tree(self, overlapping_uniforms):
        return GridBuilder(resolution=400).build(overlapping_uniforms, 3)

    def test_iter_orderings_is_sorted_and_complete(self, tree):
        space = tree.to_space()
        yielded = list(tree.iter_orderings())
        assert len(yielded) == space.size
        masses = [mass for _, mass in yielded]
        assert masses == sorted(masses, reverse=True)

    def test_iter_orderings_is_lazy(self, tree):
        # Consuming one element must not materialize the whole stream.
        iterator = tree.iter_orderings()
        path, mass = next(iterator)
        expected_paths, expected_masses = tree.to_space().top_orderings(1)
        assert np.array_equal(path, expected_paths[0])
        total = float(tree.levels[-1].probs.sum())
        assert mass / total == expected_masses[0]

    def test_count_validation(self, tree):
        with pytest.raises(ValueError):
            tree.top_orderings_lazy(-1)

    def test_zero_count_is_empty(self, tree):
        paths, masses = tree.top_orderings_lazy(0)
        assert paths.shape == (0, tree.built_depth)
        assert masses.shape == (0,)
