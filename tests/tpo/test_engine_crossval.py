"""Engine cross-validation over random mixed-family instances.

The flat level-table refactor must be invisible in the numbers: on random
workloads mixing uniform, triangular, histogram, and point-mass scores,
the Exact oracle, the retired pointer-path grid engine, the flat grid
engine, and Monte Carlo all have to agree on the leaf probabilities of
``T_K`` — exact-vs-grid within integration tolerance, flat-vs-pointer to
1e-9 (same leaves, same order), MC within sampling error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Histogram, PointMass, Triangular, Uniform
from repro.tpo import ExactBuilder, GridBuilder, MonteCarloBuilder
from repro.tpo._reference import ReferenceGridBuilder


@st.composite
def mixed_distribution(draw):
    """One score distribution from the paper's polynomial families."""
    kind = draw(st.sampled_from(["uniform", "triangular", "histogram", "point"]))
    lo = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    width = draw(st.floats(min_value=0.1, max_value=0.6, allow_nan=False))
    if kind == "uniform":
        return Uniform(lo, lo + width)
    if kind == "triangular":
        mode_frac = draw(st.floats(min_value=0.1, max_value=0.9))
        return Triangular(lo, lo + mode_frac * width, lo + width)
    if kind == "histogram":
        masses = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=2,
                max_size=4,
            )
        )
        edges = np.linspace(lo, lo + width, len(masses) + 1)
        return Histogram(edges, masses)
    return PointMass(lo)


@st.composite
def mixed_workloads(draw):
    """3–5 mixed-family distributions with assorted overlap."""
    n = draw(st.integers(min_value=3, max_value=5))
    return [draw(mixed_distribution()) for _ in range(n)]


def space_map(space):
    return {
        tuple(int(t) for t in path): float(p)
        for path, p in zip(space.paths, space.probabilities, strict=True)
    }


@given(mixed_workloads(), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_exact_vs_flat_grid(dists, k):
    """The flat grid engine tracks the closed-form oracle.

    Tolerance is bounded by the grid's midpoint-rule error, not machine
    precision: interior histogram bin edges and triangular modes are not
    grid edges, so each discontinuity contributes O(1/resolution) mass.
    """
    k = min(k, len(dists))
    exact = ExactBuilder().build(dists, k).to_space()
    grid = GridBuilder(resolution=1500).build(dists, k).to_space()
    exact_probs = space_map(exact)
    grid_probs = space_map(grid)
    for path in set(exact_probs) | set(grid_probs):
        assert exact_probs.get(path, 0.0) == pytest.approx(
            grid_probs.get(path, 0.0), abs=1.5e-3
        )


@given(mixed_workloads(), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_flat_grid_vs_pointer_grid(dists, k):
    """Flat and pointer grid paths are numerically interchangeable.

    Same grid, same recursion — the flat path must reproduce the retired
    pointer implementation's leaf table row for row to 1e-9 (the
    ``bench-engines`` parity gate, exercised here on random instances).
    """
    k = min(k, len(dists))
    flat = GridBuilder(resolution=700).build(dists, k).to_space()
    pointer = ReferenceGridBuilder(resolution=700).build(dists, k).to_space()
    assert flat.paths.shape == pointer.paths.shape
    np.testing.assert_array_equal(flat.paths, pointer.paths)
    np.testing.assert_allclose(
        flat.probabilities, pointer.probabilities, atol=1e-9, rtol=0
    )


@given(mixed_workloads(), st.integers(min_value=1, max_value=2))
@settings(max_examples=10, deadline=None)
def test_exact_vs_monte_carlo(dists, k):
    """The empirical engine converges on the same leaf masses."""
    k = min(k, len(dists))
    exact = ExactBuilder().build(dists, k).to_space()
    mc = MonteCarloBuilder(samples=80000, seed=5).build(dists, k).to_space()
    exact_probs = space_map(exact)
    mc_probs = space_map(mc)
    for path, p in exact_probs.items():
        assert mc_probs.get(path, 0.0) == pytest.approx(p, abs=0.02)
