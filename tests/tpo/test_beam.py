"""Anytime beam construction: semantics, certified loss, serialization.

The beam contract under test:

* ``beam_epsilon`` is a *per-level* lost-mass budget — each extension
  step drops at most ε of that level's candidate mass, so a K-level
  build certifies ``tree.lost_mass ≤ ε·K``;
* an inactive beam (ε=0, no width) is bit-identical to the exact build —
  same levels, same leaf masses, no loss recorded, and serialized
  payloads carry none of the new optional keys;
* the recorded loss survives JSON and npz round trips;
* the acceptance instance: N=200 where the exact grid engine raises
  ``TPOSizeError``, the ε-beam builds to full depth with certified loss
  within budget.
"""

import json

import numpy as np
import pytest

from repro.tpo.builders import (
    ExactBuilder,
    GridBuilder,
    MonteCarloBuilder,
    TPOSizeError,
)
from repro.tpo.serialize import (
    tree_from_dict,
    tree_from_npz_bytes,
    tree_to_dict,
    tree_to_npz_bytes,
)
from repro.workloads.synthetic import uniform_intervals

BUILDERS = [
    lambda **kw: GridBuilder(resolution=256, **kw),
    lambda **kw: ExactBuilder(**kw),
    lambda **kw: MonteCarloBuilder(samples=20000, seed=11, **kw),
]


@pytest.fixture
def workload():
    return uniform_intervals(8, width=0.45, rng=3)


class TestBeamSemantics:
    @pytest.mark.parametrize("make", BUILDERS)
    def test_inactive_beam_is_bit_identical(self, make, workload):
        exact = make().build(workload, 4)
        beamed = make(beam_epsilon=0.0, beam_width=None).build(workload, 4)
        assert beamed.lost_mass == 0.0
        assert not beamed.is_approximate
        for left, right in zip(exact.levels, beamed.levels, strict=True):
            assert np.array_equal(left.tuple_ids, right.tuple_ids)
            assert np.array_equal(left.parent_idx, right.parent_idx)
            assert np.array_equal(left.probs, right.probs)

    @pytest.mark.parametrize("make", BUILDERS)
    def test_epsilon_budget_bounds_lost_mass(self, make, workload):
        epsilon = 0.05
        tree = make(beam_epsilon=epsilon).build(workload, 4)
        assert tree.built_depth == 4
        assert 0.0 <= tree.lost_mass <= epsilon * 4 + 1e-12
        assert len(tree.level_lost) == len(tree.levels)
        assert sum(tree.level_lost) >= 0.0
        for level_loss in tree.level_lost:
            assert level_loss <= epsilon + 1e-12

    def test_beam_leaves_are_subset_of_exact(self, workload):
        exact = GridBuilder(resolution=256).build(workload, 4).to_space()
        beam = (
            GridBuilder(resolution=256, beam_epsilon=0.05)
            .build(workload, 4)
            .to_space()
        )
        assert beam.is_approximate
        exact_paths = {tuple(map(int, p)) for p in exact.paths}
        beam_paths = {tuple(map(int, p)) for p in beam.paths}
        assert beam_paths <= exact_paths
        assert len(beam_paths) < len(exact_paths)

    def test_beam_width_caps_levels(self, workload):
        tree = GridBuilder(resolution=256, beam_width=8).build(workload, 4)
        for level in tree.levels:
            assert level.width <= 8
        assert tree.lost_mass > 0.0
        assert tree.lost_leaves > 0.0

    def test_beam_validation(self):
        with pytest.raises(ValueError):
            GridBuilder(beam_epsilon=1.0)
        with pytest.raises(ValueError):
            GridBuilder(beam_epsilon=-0.1)
        with pytest.raises(ValueError):
            GridBuilder(beam_width=0)
        assert not GridBuilder().beam_active
        assert GridBuilder(beam_epsilon=0.1).beam_active
        assert GridBuilder(beam_width=5).beam_active

    def test_size_error_message_suggests_beam(self):
        workload = uniform_intervals(30, width=0.9, rng=5)
        with pytest.raises(TPOSizeError, match="beam"):
            GridBuilder(resolution=64, max_orderings=50).build(workload, 5)


class TestBeamAcceptance:
    """The ISSUE acceptance instance: exact fails, the beam builds it."""

    N, K, WIDTH = 200, 5, 0.05
    EPSILON = 0.02

    def test_exact_overflows_and_beam_builds(self):
        workload = uniform_intervals(self.N, width=self.WIDTH, rng=2016)
        exact = GridBuilder(resolution=128, max_orderings=20000)
        with pytest.raises(TPOSizeError):
            exact.build(workload, self.K)
        beam = GridBuilder(
            resolution=128,
            max_orderings=20000,
            beam_epsilon=self.EPSILON,
        )
        tree = beam.build(workload, self.K)
        assert tree.built_depth == self.K
        assert tree.is_approximate
        assert tree.lost_mass <= self.EPSILON * self.K
        space = tree.to_space()
        assert space.lost_mass == tree.lost_mass
        assert abs(space.probabilities.sum() - 1.0) < 1e-9


class TestLossPropagation:
    def test_prune_conditions_lost_mass(self, workload):
        tree = GridBuilder(resolution=256, beam_epsilon=0.05).build(
            workload, 4
        )
        before = tree.lost_mass
        space = tree.to_space()
        i, j = int(space.paths[0][0]), int(space.paths[0][1])
        tree.prune_with_answer(i, j, True)
        # Pruning discards retained mass, so the lost share conditionally
        # grows (or stays equal when nothing was discarded).
        assert tree.lost_mass >= before - 1e-12
        assert tree.lost_mass <= 1.0

    def test_space_restrict_propagates_loss(self, workload):
        space = (
            GridBuilder(resolution=256, beam_epsilon=0.05)
            .build(workload, 4)
            .to_space()
        )
        keep = np.ones(space.size, dtype=bool)
        keep[space.size // 2 :] = False
        restricted = space.restrict(keep)
        assert restricted.lost_mass >= space.lost_mass - 1e-12
        assert restricted.lost_leaves == space.lost_leaves


class TestBeamSerialization:
    @pytest.fixture
    def beam_tree(self, workload):
        return GridBuilder(resolution=256, beam_epsilon=0.05).build(
            workload, 4
        )

    def test_json_round_trip_preserves_loss(self, beam_tree, workload):
        restored = tree_from_dict(tree_to_dict(beam_tree), workload)
        assert restored.lost_mass == beam_tree.lost_mass
        assert restored.lost_node_max == beam_tree.lost_node_max
        assert restored.lost_leaves == beam_tree.lost_leaves
        assert restored.level_lost == beam_tree.level_lost

    def test_npz_round_trip_preserves_loss(self, beam_tree, workload):
        restored = tree_from_npz_bytes(
            tree_to_npz_bytes(beam_tree), workload
        )
        assert restored.lost_mass == beam_tree.lost_mass
        assert restored.lost_node_max == beam_tree.lost_node_max
        assert restored.lost_leaves == beam_tree.lost_leaves
        assert restored.level_lost == beam_tree.level_lost

    def test_exact_payloads_carry_no_new_keys(self, workload):
        """Exact-mode artifacts must be byte-identical to pre-beam ones."""
        tree = GridBuilder(resolution=256).build(workload, 4)
        payload = tree_to_dict(tree)
        assert "approximation" not in payload
        # The JSON text itself mentions nothing beam-related.
        text = json.dumps(payload)
        assert "lost" not in text
        import io

        import numpy as np

        archive = np.load(io.BytesIO(tree_to_npz_bytes(tree)))
        assert not any(name.startswith("lost") for name in archive.files)
        assert "level_lost" not in archive.files
