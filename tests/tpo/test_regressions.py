"""Regression tests for the builder/space correctness fixes.

Three bugs rode along with the flat level-table PR:

* ``OrderingSpace.reweight`` silently dropped the ``_positions`` and
  ``_prefix_index`` caches (noisy-worker sessions rebuilt the ``(L, N)``
  positions matrix after every answer), and ``restrict`` recomputed the
  positions rows it could have sliced;
* ``MonteCarloBuilder.extend`` never enforced ``max_orderings``, so bushy
  instances OOMed instead of raising :class:`TPOSizeError`;
* ``OrderingSpace.top_orderings`` used an unstable descending argsort, so
  equal-mass orderings came back in platform-dependent order.
"""

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.tpo import MonteCarloBuilder, OrderingSpace, TPOSizeError


@pytest.fixture
def tied_space():
    """Four orderings, all equally likely, rows deliberately shuffled."""
    paths = [[2, 1], [0, 1], [1, 0], [1, 2]]
    return OrderingSpace.from_orderings(paths, [0.25] * 4, 3)


class TestReweightCacheCarryover:
    def test_positions_cache_is_shared(self, small_space):
        positions = small_space.positions()
        child = small_space.reweight(
            np.linspace(1.0, 2.0, small_space.size)
        )
        assert child._positions is positions

    def test_prefix_index_cache_is_shared(self, small_space):
        index = small_space.prefix_group_index(2)
        child = small_space.reweight(np.ones(small_space.size))
        assert child._prefix_index is small_space._prefix_index
        assert child.prefix_group_index(2) is index

    def test_lazy_index_computed_on_child_serves_parent(self, small_space):
        child = small_space.reweight(np.ones(small_space.size))
        index = child.prefix_group_index(1)
        assert small_space.prefix_group_index(1) is index

    def test_reweight_by_answer_carries_caches(self, small_space):
        positions = small_space.positions()
        child = small_space.reweight_by_answer(0, 1, True, accuracy=0.8)
        assert child._positions is positions

    def test_restrict_slices_positions_rows(self, small_space):
        positions = small_space.positions()
        keep = np.zeros(small_space.size, dtype=bool)
        keep[:: 2] = True
        child = small_space.restrict(keep)
        assert child._positions is not None
        np.testing.assert_array_equal(child._positions, positions[keep])
        # And the sliced cache is what positions() then returns.
        assert child.positions() is child._positions

    def test_restrict_without_cache_stays_lazy(self, small_space):
        keep = np.zeros(small_space.size, dtype=bool)
        keep[: max(1, small_space.size // 2)] = True
        child = small_space.restrict(keep)
        assert child._positions is None

    def test_restrict_does_not_share_prefix_index(self, small_space):
        small_space.prefix_group_index(1)
        keep = np.zeros(small_space.size, dtype=bool)
        keep[0] = True
        child = small_space.restrict(keep)
        assert child._prefix_index == {}


class TestMonteCarloSizeGuard:
    def test_mc_raises_tpo_size_error(self):
        dists = [Uniform(0, 1) for _ in range(8)]
        with pytest.raises(TPOSizeError):
            MonteCarloBuilder(samples=30000, seed=0, max_orderings=100).build(
                dists, 6
            )

    def test_mc_guard_message_is_actionable(self):
        dists = [Uniform(0, 1) for _ in range(7)]
        with pytest.raises(TPOSizeError, match="incr"):
            MonteCarloBuilder(samples=20000, seed=1, max_orderings=50).build(
                dists, 5
            )

    def test_mc_within_budget_still_builds(self):
        dists = [Uniform(0, 1) for _ in range(4)]
        tree = MonteCarloBuilder(
            samples=5000, seed=2, max_orderings=200
        ).build(dists, 3)
        assert tree.is_complete


class TestStableTopOrderings:
    def test_ties_break_by_ascending_path(self, tied_space):
        paths, masses = tied_space.top_orderings(4)
        assert paths.tolist() == [[0, 1], [1, 0], [1, 2], [2, 1]]
        np.testing.assert_allclose(masses, 0.25)

    def test_repeated_calls_are_byte_identical(self, small_space):
        first_paths, first_masses = small_space.top_orderings(10)
        for _ in range(3):
            paths, masses = small_space.top_orderings(10)
            assert paths.tobytes() == first_paths.tobytes()
            assert masses.tobytes() == first_masses.tobytes()

    def test_descending_mass_still_primary(self):
        space = OrderingSpace.from_orderings(
            [[2, 0], [0, 1], [1, 2]], [0.2, 0.5, 0.3], 3
        )
        paths, masses = space.top_orderings(3)
        assert paths.tolist() == [[0, 1], [1, 2], [2, 0]]
        assert masses.tolist() == sorted(masses.tolist(), reverse=True)

    def test_most_probable_ordering_breaks_ties_like_top(self, tied_space):
        mpo = tied_space.most_probable_ordering()
        top_paths, _ = tied_space.top_orderings(1)
        np.testing.assert_array_equal(mpo, top_paths[0])
        assert mpo.tolist() == [0, 1]

    def test_most_probable_ordering_unique_max(self):
        space = OrderingSpace.from_orderings(
            [[0, 1], [1, 0]], [0.3, 0.7], 2
        )
        assert space.most_probable_ordering().tolist() == [1, 0]
