"""Tests for workload generators and scenario tables."""

import numpy as np
import pytest

from repro.api import WORKLOADS
from repro.distributions import PointMass, Uniform
from repro.workloads import (
    GENERATORS,
    clustered_intervals,
    gaussian_scores,
    jittered_widths,
    make_workload,
    mixed_certainty,
    pareto_scores,
    photo_contest,
    restaurant_guide,
    sensor_network,
    triangular_scores,
    uniform_intervals,
)


class TestSyntheticGenerators:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_generator_contract(self, kind):
        dists = WORKLOADS.create(kind, 10, rng=0)
        assert len(dists) == 10
        for dist in dists:
            assert dist.lower <= dist.upper
            assert np.isfinite(dist.mean())

    def test_reproducible_with_seed(self):
        a = uniform_intervals(5, rng=42)
        b = uniform_intervals(5, rng=42)
        for left, right in zip(a, b, strict=True):
            assert left.support == right.support

    def test_uniform_width_is_respected(self):
        for dist in uniform_intervals(8, width=0.2, rng=1):
            assert dist.width() == pytest.approx(0.2)

    def test_jittered_widths_vary(self):
        widths = {round(d.width(), 6) for d in jittered_widths(10, jitter=0.5, rng=2)}
        assert len(widths) > 1

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            jittered_widths(5, jitter=1.5)

    def test_gaussian_sigma(self):
        for dist in gaussian_scores(5, sigma=0.05, rng=3):
            assert dist.sigma == pytest.approx(0.05)

    def test_pareto_heavy_tail(self):
        dists = pareto_scores(5, shape=1.2, rng=4)
        for dist in dists:
            assert dist.upper > dist.lower

    def test_clustered_intervals_cluster(self):
        dists = clustered_intervals(12, clusters=2, rng=5)
        lowers = sorted(d.lower for d in dists)
        assert lowers[-1] - lowers[0] > 0.1  # spans the clusters

    def test_mixed_certainty_contains_atoms(self):
        dists = mixed_certainty(40, certain_fraction=0.5, rng=6)
        kinds = {type(d) for d in dists}
        assert PointMass in kinds
        assert Uniform in kinds

    def test_legacy_generators_alias_is_the_registry(self):
        assert GENERATORS is WORKLOADS

    def test_make_workload_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="WORKLOADS.create"):
            dists = make_workload("uniform", 5, rng=0)
        assert len(dists) == 5

    def test_make_workload_unknown(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                make_workload("weird", 5)

    def test_triangular_scores_bounded(self):
        for dist in triangular_scores(6, rng=7):
            assert dist.lower <= dist.mode <= dist.upper


class TestScenarios:
    def test_sensor_network_schema(self):
        table = sensor_network(n_sensors=6, rng=0)
        assert len(table) == 6
        row = table[0]
        assert "temperature" in row.attributes
        assert "true_temperature" in row.attributes
        dist = row.attribute_distribution("temperature")
        assert dist.lower < dist.upper

    def test_sensor_posterior_shrinks_with_readings(self):
        few = sensor_network(n_sensors=3, readings_per_sensor=2, rng=1)
        many = sensor_network(n_sensors=3, readings_per_sensor=50, rng=1)
        width_few = few[0].attribute_distribution("temperature").width()
        width_many = many[0].attribute_distribution("temperature").width()
        assert width_many < width_few

    def test_photo_contest_schema(self):
        table = photo_contest(n_photos=5, rng=2)
        assert len(table) == 5
        rating = table[0].attribute_distribution("rating")
        assert 1.0 <= rating.lower <= rating.upper <= 5.0

    def test_restaurant_guide_schema(self):
        table = restaurant_guide(n_restaurants=4, rng=3)
        row = table[0]
        assert isinstance(row.attributes["price"], float)
        quality = row.attribute_distribution("quality")
        assert quality.width() > 0

    def test_scenarios_are_seed_stable(self):
        a = photo_contest(n_photos=4, rng=9)
        b = photo_contest(n_photos=4, rng=9)
        assert a.keys() == b.keys()
        assert a[0].attribute_distribution("rating").support == pytest.approx(
            b[0].attribute_distribution("rating").support
        )
