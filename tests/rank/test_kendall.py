"""Tests for Kendall-style ranking distances."""

import numpy as np
import pytest

from repro.rank import (
    expected_topk_distance,
    kendall_tau,
    max_topk_distance,
    spearman_footrule,
    stance_marginals,
    topk_kendall,
)
from repro.rank.kendall import presence_pair_marginals
from repro.tpo.space import OrderingSpace


class TestKendallTau:
    def test_identity_is_zero(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 0.0

    def test_reversal_is_one(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == 1.0

    def test_single_swap(self):
        assert kendall_tau([1, 2, 3], [2, 1, 3], normalized=False) == 1.0

    def test_rejects_different_item_sets(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 3])

    def test_counts_inversions(self):
        # [3,1,2] vs [1,2,3]: pairs (3,1) and (3,2) inverted.
        assert kendall_tau([3, 1, 2], [1, 2, 3], normalized=False) == 2.0

    def test_symmetry(self):
        a, b = [0, 1, 2, 3], [2, 0, 3, 1]
        assert kendall_tau(a, b) == kendall_tau(b, a)

    def test_trivial_lengths(self):
        assert kendall_tau([5], [5]) == 0.0
        assert kendall_tau([], []) == 0.0


class TestTopKKendall:
    def test_identical_lists(self):
        assert topk_kendall([0, 1, 2], [0, 1, 2]) == 0.0

    def test_disjoint_lists_are_maximal(self):
        assert topk_kendall([0, 1], [2, 3], n_tuples=4) == pytest.approx(1.0)

    def test_matches_kendall_on_full_permutations(self):
        a, b = [0, 1, 2, 3], [1, 3, 0, 2]
        # With k = n there are no silent pairs: distances coincide up to
        # their normalizations.
        raw_topk = topk_kendall(a, b, normalized=False)
        raw_full = kendall_tau(a, b, normalized=False)
        assert raw_topk == pytest.approx(raw_full)

    def test_penalty_zero_ignores_silent_pairs(self):
        # Lists sharing no information about each other's internal pairs.
        value = topk_kendall([0, 1], [0, 2], n_tuples=4, penalty=0.0, normalized=False)
        # pairs: (0,1): b silent? 1 ∉ b, both in a → penalty pair → 0 with p=0;
        # (0,2): a silent? 2 ∉ a → both in b → penalty → 0; (1,2): 1 ∈ a only,
        # 2 ∈ b only → opposite → 1.
        assert value == pytest.approx(1.0)

    def test_union_semantics_exclude_outside_pairs(self):
        # Tuples 4, 5 appear in neither list: they must not contribute.
        small = topk_kendall([0, 1], [2, 3], n_tuples=4, normalized=False)
        large = topk_kendall([0, 1], [2, 3], n_tuples=6, normalized=False)
        assert small == pytest.approx(large)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            topk_kendall([0, 0], [1, 2])

    def test_worst_case_formula_matches_bruteforce(self):
        import itertools

        n, k = 5, 2
        worst = max(
            topk_kendall(list(a), list(b), n_tuples=n, normalized=False)
            for a in itertools.permutations(range(n), k)
            for b in itertools.permutations(range(n), k)
        )
        assert worst == pytest.approx(max_topk_distance(k, k))

    def test_penalty_validation(self):
        with pytest.raises(ValueError):
            topk_kendall([0], [1], penalty=2.0)


class TestFootrule:
    def test_identity(self):
        assert spearman_footrule([0, 1, 2], [0, 1, 2]) == 0.0

    def test_positive_for_disjoint(self):
        assert spearman_footrule([0, 1], [2, 3], n_tuples=4) > 0

    def test_bounded_by_one(self):
        assert spearman_footrule([0, 1, 2], [3, 4, 5], n_tuples=6) <= 1.0


class TestExpectedDistance:
    def test_matches_manual_expectation(self, toy_space):
        reference = [0, 1]
        manual = sum(
            p * topk_kendall(list(path), reference, n_tuples=4)
            for path, p in zip(toy_space.paths, toy_space.probabilities, strict=True)
        )
        value = expected_topk_distance(toy_space, reference)
        assert value == pytest.approx(manual)

    def test_zero_against_certain_space(self):
        space = OrderingSpace.from_orderings([[2, 0, 1]], [1.0], 4)
        assert expected_topk_distance(space, [2, 0, 1]) == 0.0

    def test_chunking_does_not_change_result(self, small_space):
        reference = list(small_space.paths[0])
        full = expected_topk_distance(small_space, reference, chunk=10**6)
        chunked = expected_topk_distance(small_space, reference, chunk=3)
        assert full == pytest.approx(chunked)

    def test_bounded_by_one(self, small_space):
        reference = list(small_space.paths[-1])
        assert 0.0 <= expected_topk_distance(small_space, reference) <= 1.0


class TestMarginals:
    def test_stance_marginals_partition(self, toy_space):
        p_plus, p_minus, p_zero = stance_marginals(toy_space)
        off = ~np.eye(4, dtype=bool)
        np.testing.assert_allclose(
            (p_plus + p_minus + p_zero)[off], 1.0, atol=1e-9
        )
        np.testing.assert_allclose(p_plus, p_minus.T, atol=1e-12)

    def test_presence_pair_marginals(self, toy_space):
        both = presence_pair_marginals(toy_space)
        # Pair (0,1) present together only in paths [0,1] and [1,0]: 0.7.
        assert both[0, 1] == pytest.approx(0.7)
        assert both[1, 0] == pytest.approx(0.7)
        np.testing.assert_allclose(np.diag(both), 0.0)
