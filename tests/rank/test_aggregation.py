"""Tests for rank aggregation (ORA machinery)."""

import itertools

import numpy as np
import pytest

from repro.rank import (
    AggregationCosts,
    borda_aggregation,
    copeland_aggregation,
    exact_aggregation,
    expected_topk_distance,
    kwiksort_aggregation,
    local_search,
    optimal_rank_aggregation,
    topk_kendall,
)
from repro.tpo.space import OrderingSpace


@pytest.fixture
def skewed_space():
    """A space with an obvious modal ordering [2, 0, 1]."""
    paths = [[2, 0, 1], [2, 1, 0], [0, 2, 1]]
    probs = [0.7, 0.2, 0.1]
    return OrderingSpace.from_orderings(paths, probs, 4)


class TestCostModel:
    def test_total_matches_expected_distance(self, skewed_space):
        costs = AggregationCosts(skewed_space)
        for sigma in itertools.permutations(range(4), 3):
            manual = sum(
                p * topk_kendall(list(w), list(sigma), n_tuples=4, normalized=False)
                for w, p in zip(
                    skewed_space.paths, skewed_space.probabilities
                , strict=True)
            )
            assert costs.total(list(sigma)) == pytest.approx(manual)

    def test_total_matches_normalized_distance(self, skewed_space):
        costs = AggregationCosts(skewed_space)
        from repro.rank.kendall import max_topk_distance

        sigma = [2, 0, 1]
        worst = max_topk_distance(3, 3)
        assert costs.total(sigma) / worst == pytest.approx(
            expected_topk_distance(skewed_space, sigma)
        )


class TestExactAggregation:
    def test_optimal_vs_enumeration(self, skewed_space):
        costs = AggregationCosts(skewed_space)
        best = min(
            itertools.permutations(range(4), 3),
            key=lambda sigma: costs.total(list(sigma)),
        )
        ora = exact_aggregation(skewed_space, 3)
        assert costs.total(list(ora)) == pytest.approx(
            costs.total(list(best))
        )

    def test_random_spaces_vs_enumeration(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            paths = np.array(
                [rng.permutation(5)[:3] for _ in range(6)]
            )
            paths = np.unique(paths, axis=0)
            space = OrderingSpace(
                paths, rng.random(paths.shape[0]) + 0.05, 5
            )
            costs = AggregationCosts(space)
            best_value = min(
                costs.total(list(sigma))
                for sigma in itertools.permutations(range(5), 3)
            )
            ora = exact_aggregation(space, 3)
            assert costs.total(list(ora)) == pytest.approx(best_value)

    def test_guards_large_candidate_sets(self):
        rng = np.random.default_rng(1)
        paths = np.array([rng.permutation(30)[:5] for _ in range(40)])
        space = OrderingSpace(paths, np.ones(40), 30)
        with pytest.raises(ValueError):
            exact_aggregation(space, 5)


class TestHeuristics:
    def test_borda_on_skewed_space(self, skewed_space):
        ora = borda_aggregation(skewed_space, 3)
        assert int(ora[0]) == 2  # tuple 2 clearly leads

    def test_copeland_returns_valid_list(self, skewed_space):
        result = copeland_aggregation(skewed_space, 3)
        assert len(result) == 3
        assert len({int(t) for t in result}) == 3

    def test_kwiksort_returns_valid_list(self, skewed_space):
        result = kwiksort_aggregation(skewed_space, 3)
        assert len(result) == 3

    def test_kwiksort_with_rng(self, skewed_space, rng):
        result = kwiksort_aggregation(skewed_space, 3, rng=rng)
        assert len(result) == 3

    def test_local_search_never_worsens(self, skewed_space):
        costs = AggregationCosts(skewed_space)
        seed = [3, 1, 0]  # a deliberately bad start
        improved = local_search(
            seed, costs, skewed_space.present_tuples()
        )
        assert costs.total(improved) <= costs.total(seed) + 1e-12

    def test_local_search_reaches_optimum_on_small_space(self, skewed_space):
        costs = AggregationCosts(skewed_space)
        improved = local_search(
            borda_aggregation(skewed_space, 3),
            costs,
            skewed_space.present_tuples(),
        )
        exact = exact_aggregation(skewed_space, 3)
        assert costs.total(improved) == pytest.approx(
            costs.total(exact), abs=1e-9
        )


class TestDispatch:
    def test_auto_uses_exact_for_small(self, skewed_space):
        auto = optimal_rank_aggregation(skewed_space, 3, method="auto")
        exact = exact_aggregation(skewed_space, 3)
        costs = AggregationCosts(skewed_space)
        assert costs.total(auto) == pytest.approx(costs.total(exact))

    def test_every_method_runs(self, skewed_space):
        for method in ("exact", "borda", "copeland", "kwiksort", "borda+ls", "auto"):
            result = optimal_rank_aggregation(skewed_space, 3, method=method)
            assert len(result) == 3

    def test_unknown_method(self, skewed_space):
        with pytest.raises(ValueError):
            optimal_rank_aggregation(skewed_space, 3, method="magic")

    def test_ora_beats_mpo_distance(self, skewed_space):
        """The exact ORA minimizes expected distance, so it is at least as
        good a representative as the most probable ordering."""
        ora = optimal_rank_aggregation(skewed_space, method="exact")
        mpo = skewed_space.most_probable_ordering()
        assert expected_topk_distance(skewed_space, ora) <= (
            expected_topk_distance(skewed_space, mpo) + 1e-12
        )
