"""Tests for the experiment harness."""


import numpy as np
import pytest

from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    run_cell,
)


class TestExperimentConfig:
    def test_workload_is_rep_stable_and_policy_independent(self):
        config = ExperimentConfig(n=6, k=3, repetitions=2)
        one = config.workload_for(0)
        two = config.workload_for(0)
        other_rep = config.workload_for(1)
        assert [d.support for d in one] == [d.support for d in two]
        assert [d.support for d in one] != [d.support for d in other_rep]

    def test_truth_is_rep_stable(self):
        config = ExperimentConfig(n=6, k=3)
        dists = config.workload_for(0)
        a = config.truth_for(0, dists)
        b = config.truth_for(0, dists)
        np.testing.assert_array_equal(a.ordering, b.ordering)


class TestRunCell:
    def test_produces_result(self):
        config = ExperimentConfig(
            n=7, k=3, workload_params={"width": 0.25}, repetitions=1
        )
        result = run_cell(config, "T1-on", 4, 0)
        assert result.policy == "T1-on"
        assert result.questions_asked <= 4

    def test_policies_face_same_instance(self):
        config = ExperimentConfig(
            n=7, k=3, workload_params={"width": 0.25}, repetitions=1
        )
        a = run_cell(config, "naive", 2, 0)
        b = run_cell(config, "T1-on", 2, 0)
        # Paired design ⇒ identical initial uncertainty/distance.
        assert a.initial_uncertainty == pytest.approx(b.initial_uncertainty)
        assert a.initial_distance == pytest.approx(b.initial_distance)

    def test_noisy_config(self):
        config = ExperimentConfig(
            n=6, k=3, worker_accuracy=0.8, repetitions=1
        )
        result = run_cell(config, "T1-on", 3, 0)
        assert result.answers[0].accuracy < 1.0


class TestResultTable:
    def test_aggregate_mean_and_std(self):
        table = ResultTable()
        table.add(policy="x", budget=5, distance=0.2)
        table.add(policy="x", budget=5, distance=0.4)
        table.add(policy="y", budget=5, distance=0.1)
        agg = table.aggregate(["policy", "budget"], ["distance"])
        rows = {r["policy"]: r for r in agg.rows}
        assert rows["x"]["distance"] == pytest.approx(0.3)
        assert rows["x"]["reps"] == 2
        assert rows["x"]["distance_std"] == pytest.approx(0.1)
        assert rows["y"]["distance_std"] == 0.0

    def test_aggregate_ignores_nan(self):
        table = ResultTable()
        table.add(policy="x", distance=float("nan"))
        table.add(policy="x", distance=0.5)
        agg = table.aggregate(["policy"], ["distance"])
        assert agg.rows[0]["distance"] == pytest.approx(0.5)

    def test_pivot_sorted_series(self):
        table = ResultTable()
        table.add(policy="a", budget=10, distance=0.1)
        table.add(policy="a", budget=5, distance=0.3)
        series = table.pivot("policy", "budget", "distance")
        assert series["a"] == [(5, 0.3), (10, 0.1)]

    def test_csv_roundtrip(self, tmp_path):
        table = ResultTable()
        table.add(policy="a", budget=1, distance=0.5)
        path = tmp_path / "out.csv"
        table.to_csv(path)
        text = path.read_text()
        assert "policy,budget,distance" in text
        assert "a,1,0.5" in text

    def test_format_alignment(self):
        table = ResultTable()
        table.add(policy="longname", value=1.23456)
        text = table.format()
        assert "policy" in text and "longname" in text

    def test_format_series_grid(self):
        series = {"algo": [(0, 0.5), (5, 0.25)]}
        text = format_series(series)
        assert "B=0" in text and "B=5" in text
        assert "0.2500" in text

    def test_add_result_projection(self):
        config = ExperimentConfig(
            n=6, k=3, workload_params={"width": 0.25}, repetitions=1
        )
        result = run_cell(config, "naive", 2, 0)
        table = ResultTable()
        table.add_result(result, rep=0)
        row = table.rows[0]
        assert row["policy"] == "naive"
        assert "cpu" in row and "distance" in row
