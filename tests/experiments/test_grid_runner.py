"""Tests for the grid declaration, cell addressing, and parallel runner."""

import json
import math

import pytest

from repro.experiments import fig1a, scalability
from repro.experiments.grid import (
    ExperimentGrid,
    GridCell,
    canonical_json,
    execute_cell,
    resolve_runner,
)
from repro.experiments.harness import ExperimentConfig, config_cells
from repro.experiments.runner import run_grid
from repro.experiments.store import ResultStore

TINY_CONFIG = ExperimentConfig(
    n=6, k=3, workload_params={"width": 0.3}, repetitions=1
)
TINY_POLICIES = {"T1-on": None, "naive": None}
TINY_BUDGETS = [0, 2]


def tiny_grid() -> ExperimentGrid:
    return ExperimentGrid(
        "TINY", config_cells("TINY", TINY_CONFIG, TINY_POLICIES, TINY_BUDGETS)
    )


def rows_match(a, b, ignore=("cpu",)) -> bool:
    """Cell-for-cell equality, NaN-aware, modulo measured timings."""
    if set(a) != set(b):
        return False
    for key in a:
        if key in ignore:
            continue
        left, right = a[key], b[key]
        if isinstance(left, float) and isinstance(right, float):
            if math.isnan(left) and math.isnan(right):
                continue
            if left != right:
                return False
        elif left != right:
            return False
    return True


class TestCellAddressing:
    def test_cell_id_ignores_param_insertion_order(self):
        a = GridCell("X", "m:f", {"alpha": 1, "beta": {"c": 2, "d": 3}})
        b = GridCell("X", "m:f", {"beta": {"d": 3, "c": 2}, "alpha": 1})
        assert a.cell_id == b.cell_id

    def test_cell_id_depends_on_every_identity_field(self):
        base = GridCell("X", "m:f", {"alpha": 1})
        assert base.cell_id != GridCell("Y", "m:f", {"alpha": 1}).cell_id
        assert base.cell_id != GridCell("X", "m:g", {"alpha": 1}).cell_id
        assert base.cell_id != GridCell("X", "m:f", {"alpha": 2}).cell_id

    def test_tags_do_not_enter_identity(self):
        a = GridCell("X", "m:f", {"alpha": 1}, tags={"arm": "left"})
        b = GridCell("X", "m:f", {"alpha": 1}, tags={"arm": "right"})
        assert a.cell_id == b.cell_id

    def test_canonical_json_is_key_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_resolve_runner_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_runner("no_colon_here")
        with pytest.raises(ValueError):
            resolve_runner("repro.experiments.harness:not_a_function")

    def test_execute_cell_runs_the_named_runner(self):
        cell = tiny_grid().cells[0]
        row = execute_cell(cell)
        assert row["policy"] == "T1-on"
        assert row["budget"] == 0


class TestGridFilter:
    def test_filter_by_policy_and_budget(self):
        grid = tiny_grid().filter(policies=["T1-on"], budgets=[2])
        assert len(grid) == 1
        assert grid.cells[0].params["policy"] == "T1-on"
        assert grid.cells[0].params["budget"] == 2

    def test_filter_keeps_cells_without_the_key(self):
        # Scalability cells have no "policy"/"budget=?" semantics to filter
        # on (they are keyed by n/k/engine); the filter must not drop them.
        grid = scalability.grid(fast=True)
        assert len(grid.filter(policies=["T1-on"])) == len(grid)


class TestRunGrid:
    def test_serial_table_matches_legacy_loop_shape(self):
        report = run_grid(tiny_grid())
        assert len(report.table) == 4
        assert report.skipped == []
        assert len(report.executed) == 4
        assert {r["policy"] for r in report.table.rows} == {"T1-on", "naive"}

    def test_parallel_equals_serial_cell_for_cell(self):
        serial = run_grid(tiny_grid(), workers=0)
        parallel = run_grid(tiny_grid(), workers=2)
        assert len(serial.table) == len(parallel.table)
        for a, b in zip(serial.table.rows, parallel.table.rows, strict=True):
            assert rows_match(a, b), (a, b)

    def test_fig1a_parallel_equals_serial(self):
        # The acceptance-criterion grid: every policy (incl. incr with its
        # NaN initial metrics) through the pool, compared per cell.
        grid = fig1a.grid(fast=True).filter(budgets=[0, 5])
        serial = run_grid(grid, workers=0)
        parallel = run_grid(grid, workers=4)
        for a, b in zip(serial.table.rows, parallel.table.rows, strict=True):
            assert rows_match(a, b), (a, b)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            run_grid(tiny_grid(), resume=True)

    def test_shared_cells_execute_once_but_keep_their_tags(self):
        # The SCALE mid-point belongs to both sweeps: one execution, two
        # rows, each with its own sweep tag.
        grid = scalability.grid(fast=True)
        ids = grid.cell_ids()
        assert len(set(ids)) < len(ids)
        report = run_grid(grid)
        assert len(report.executed) == len(set(ids))
        assert len(report.table) == len(grid)
        assert {r["sweep"] for r in report.table.rows} == {"N", "K"}


class TestResumability:
    def test_store_populated_and_resume_skips_everything(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        first = run_grid(tiny_grid(), store=store)
        assert len(first.executed) == 4
        assert store.completed_ids() == set(tiny_grid().cell_ids())
        second = run_grid(tiny_grid(), store=store, resume=True)
        assert second.executed == []
        assert len(second.skipped) == 4
        for a, b in zip(first.table.rows, second.table.rows, strict=True):
            assert rows_match(a, b, ignore=())  # stored rows verbatim

    def test_interrupted_run_resumes_only_missing_cells(self, tmp_path):
        """Kill a run mid-flight (drop half the store), rerun, compare."""
        grid = tiny_grid()
        path = tmp_path / "results.jsonl"
        clean = run_grid(grid, store=ResultStore(path))

        # Simulate the crash: keep only the first half of the store.
        lines = path.read_text().splitlines()
        half = lines[: len(lines) // 2]
        path.write_text("".join(line + "\n" for line in half))
        surviving = {json.loads(line)["cell_id"] for line in half}

        resumed = run_grid(grid, store=ResultStore(path), resume=True)
        assert set(resumed.skipped) == surviving
        assert set(resumed.executed) == set(grid.cell_ids()) - surviving
        # Merged results equal the clean run cell-for-cell.
        for a, b in zip(clean.table.rows, resumed.table.rows, strict=True):
            assert rows_match(a, b), (a, b)
        # And the store is whole again.
        assert ResultStore(path).completed_ids() == set(grid.cell_ids())

    def test_resume_tolerates_a_torn_final_line(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "results.jsonl"
        run_grid(grid, store=ResultStore(path))
        # A run killed mid-write leaves a truncated last record.
        torn = path.read_text()[:-25]
        path.write_text(torn)
        resumed = run_grid(grid, store=ResultStore(path), resume=True)
        assert len(resumed.executed) == 1
        assert len(resumed.table) == len(grid)


class TestDriverGrids:
    def test_every_experiment_declares_a_grid(self):
        from repro.experiments import EXPERIMENTS

        for name, module in EXPERIMENTS.items():
            grid = module.grid(fast=True)
            assert len(grid) > 0
            for cell in grid:
                assert cell.experiment == name
                # Cell params must be JSON-round-trippable (store format).
                assert json.loads(canonical_json(cell.params)) == cell.params

    def test_driver_run_matches_direct_grid_execution(self):
        from repro.experiments import incr_ablation

        table = incr_ablation.run(fast=True)
        report = run_grid(incr_ablation.grid(fast=True))
        assert len(table) == len(report.table)
        for a, b in zip(table.rows, report.table.rows, strict=True):
            assert rows_match(a, b), (a, b)
