"""Tests for the consolidated report writer."""

import pytest

from repro.experiments.report import run_report


class TestRunReport:
    def test_single_experiment_document(self, tmp_path):
        output = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        document = run_report(
            ["ASTAR"], fast=True, output=str(output), csv_dir=str(csv_dir)
        )
        assert "# Reproduction report" in document
        assert "## ASTAR" in document
        assert output.exists()
        assert (csv_dir / "astar.csv").exists()
        assert output.read_text() == document

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_report(["WAT"])

    def test_ids_case_insensitive(self):
        document = run_report(["astar"], fast=True)
        assert "## ASTAR" in document


class TestCliIntegration:
    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "out.md"
        code = main(
            ["experiment", "ASTAR", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        assert "ASTAR" in output.read_text()
        assert "report written" in capsys.readouterr().out
