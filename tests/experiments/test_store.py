"""Tests for the JSON-lines result store."""

import json
import math

from repro.experiments.store import ResultStore


class TestResultStore:
    def test_append_and_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "out.jsonl")
        store.append("abc", "FIG1A", {"policy": "T1-on", "distance": 0.5})
        store.append("def", "FIG1A", {"policy": "naive", "distance": 0.7})
        records = store.load()
        assert set(records) == {"abc", "def"}
        assert records["abc"]["experiment"] == "FIG1A"
        assert records["abc"]["row"]["distance"] == 0.5
        assert len(store) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope.jsonl")
        assert store.load() == {}
        assert store.completed_ids() == set()

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "out.jsonl")
        store.append("abc", "X", {"v": 1})
        store.append("abc", "X", {"v": 2})
        assert store.load()["abc"]["row"]["v"] == 2
        assert len(store) == 1

    def test_nan_rows_survive_the_roundtrip(self, tmp_path):
        # incr cells report NaN initial metrics; the store must keep them.
        store = ResultStore(tmp_path / "out.jsonl")
        store.append("abc", "X", {"initial_distance": float("nan")})
        value = store.load()["abc"]["row"]["initial_distance"]
        assert math.isnan(value)

    def test_unparsable_lines_are_skipped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        store = ResultStore(path)
        store.append("abc", "X", {"v": 1})
        store.append("def", "X", {"v": 2})
        text = path.read_text()
        # Torn tail (killed mid-write) plus a stray garbage line.
        path.write_text("garbage\n" + text[:-10])
        records = store.load()
        assert set(records) == {"abc"}

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "out.jsonl")
        store.append("abc", "X", {"v": 1})
        assert store.completed_ids() == {"abc"}

    def test_lines_are_one_json_record_each(self, tmp_path):
        path = tmp_path / "out.jsonl"
        store = ResultStore(path)
        store.append("abc", "X", {"v": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {"cell_id": "abc", "experiment": "X", "row": {"v": 1}}


class TestDeduplication:
    """A resume that re-executes a torn cell appends a second line; merged
    reports must see exactly one row per cell (the freshest)."""

    def test_torn_cell_reexecution_yields_one_record(self, tmp_path):
        path = tmp_path / "out.jsonl"
        store = ResultStore(path)
        store.append("abc", "X", {"v": 1})
        store.append("def", "X", {"v": 2})
        # Kill mid-write: the def line is torn, so a resumed run recomputes
        # and re-appends that cell.
        path.write_text(path.read_text()[:-10])
        store.append("def", "X", {"v": 3})
        records = store.load()
        assert len(records) == 2
        assert records["def"]["row"]["v"] == 3

    def test_duplicate_cells_keep_last_through_run_grid(self, tmp_path):
        from repro.experiments.grid import ExperimentGrid, GridCell
        from repro.experiments.runner import run_grid

        cell = GridCell(
            experiment="X",
            runner="operator:length_hint",  # never executed (resume hit)
            params={"obj": []},
        )
        store = ResultStore(tmp_path / "out.jsonl")
        store.append(cell.cell_id, "X", {"v": "stale"})
        store.append(cell.cell_id, "X", {"v": "fresh"})
        report = run_grid(
            ExperimentGrid("X", [cell]), store=store, resume=True
        )
        assert len(report.table) == 1
        assert report.table.rows[0]["v"] == "fresh"
        assert report.skipped == [cell.cell_id]

    def test_compact_rewrites_one_line_per_cell(self, tmp_path):
        path = tmp_path / "out.jsonl"
        store = ResultStore(path)
        store.append("abc", "X", {"v": 1})
        store.append("abc", "X", {"v": 2})
        store.append("def", "X", {"v": float("nan")})
        path.write_text(path.read_text() + '{"torn...')
        removed = store.compact()
        assert removed == 2  # the duplicate and the torn line
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = store.load()
        assert records["abc"]["row"]["v"] == 2
        assert math.isnan(records["def"]["row"]["v"])
        # Compacting an already-compact store is a no-op.
        assert store.compact() == 0

    def test_compact_missing_file_is_noop(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").compact() == 0
