"""Smoke tests over the cheap experiment modules.

The expensive grids (FIG1A/FIG1B/MEAS/DIST) are exercised by the benchmark
suite; here we run the sub-second ones end to end so a broken experiment
module fails the unit suite, not just the nightly benchmarks.
"""

from repro.experiments import (
    EXPERIMENTS,
    astar_comparison,
    incr_ablation,
    noisy,
    scalability,
)


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "FIG1A", "FIG1B", "MEAS", "ASTAR", "NOISE", "DIST", "INCR",
            "SCALE", "TRANS",
        }

    def test_modules_expose_run_and_report(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.report)
            assert callable(module.main)


class TestCheapExperiments:
    def test_astar_comparison(self):
        table = astar_comparison.run(fast=True)
        assert len(table) == len(astar_comparison.POLICIES) * 2  # 2 reps
        text = astar_comparison.report(table)
        assert "A*-off" in text

    def test_incr_ablation(self):
        table = incr_ablation.run(fast=True)
        arms = {row["arm"] for row in table.rows}
        assert "T1-on (full tree)" in arms
        assert any(arm.startswith("incr n=") for arm in arms)
        assert "INCR" in incr_ablation.report(table)

    def test_noise_arms(self):
        table = noisy.run(fast=True)
        arms = {row["arm"] for row in table.rows}
        assert "p=1" in arms
        assert "p=0.8 x3 vote" in arms
        assert "NOISE" in noisy.report(table)

    def test_scalability_sweeps(self):
        table = scalability.run(fast=True)
        sweeps = {row["sweep"] for row in table.rows}
        assert sweeps == {"N", "K"}
        for row in table.rows:
            assert row["build_cpu"] >= 0.0
            assert row["orderings"] >= 1
