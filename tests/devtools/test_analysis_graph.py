"""Call-graph builder contract: name resolution, typed receivers, lazy
registry edges, caught-exception tracking, and the graph dump shape.

The heavyweight assertions run against the *real* repo graph (built once
per module) so the resolver is tested against the idioms it exists for —
the catalog's lazy ``"module:attr"`` registrations and the service's
async→sync→blocking call chains — not against toy inputs only.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analysis import dataflow
from repro.devtools.analysis.checks import BLOCKING, _seed_taints
from repro.devtools.analysis.graph import build_graph, module_node

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def repo_graph():
    return build_graph(REPO_ROOT)


@pytest.fixture(scope="module")
def rpc101_bad_graph():
    return build_graph(FIXTURES / "rpc101" / "bad")


class TestModuleMap:
    def test_package_modules_discovered(self, repo_graph):
        assert "repro.api.catalog" in repo_graph.modules
        assert "repro.service.server" in repo_graph.modules
        # __init__.py files name their package, not "...__init__".
        assert "repro.api" in repo_graph.modules
        assert not any("__init__" in name for name in repo_graph.modules)

    def test_functions_methods_and_module_nodes(self, repo_graph):
        assert "repro.api.canonical:content_key" in repo_graph.functions
        assert (
            "repro.service.manager:SessionManager.create_session"
            in repo_graph.functions
        )
        assert module_node("repro.api.catalog") in repo_graph.functions

    def test_async_flag(self, repo_graph):
        handler = repo_graph.functions["repro.service.server:_handle_next"]
        assert handler.is_async
        helper = repo_graph.functions[
            "repro.service.manager:SessionManager._create"
        ]
        assert not helper.is_async


class TestResolution:
    def test_self_method_call_resolves(self, repo_graph):
        info = repo_graph.functions[
            "repro.service.manager:SessionManager.create_session"
        ]
        targets = {site.target for site in info.calls}
        assert "repro.service.manager:SessionManager._create" in targets

    def test_annotated_receiver_resolves_across_modules(self, repo_graph):
        """``ctx.manager.create_session`` resolves through the
        ``manager: SessionManager`` attribute annotation on Context."""
        info = repo_graph.functions[
            "repro.service.server:_handle_create_session"
        ]
        targets = {site.target for site in info.calls}
        assert (
            "repro.service.manager:SessionManager.create_session" in targets
        )

    def test_lazy_registry_edge_is_followed(self, repo_graph):
        """The catalog's ``"repro.tpo.builders:GridBuilder"`` string is a
        real call edge from the catalog's import-time code."""
        refs = {
            (ref.registry, ref.plugin): ref for ref in repo_graph.lazy_refs
        }
        grid = refs[("ENGINES", "grid")]
        assert grid.text == "repro.tpo.builders:GridBuilder"
        catalog = repo_graph.functions[module_node("repro.api.catalog")]
        assert (
            "repro.tpo.builders:GridBuilder.__init__"
            in {site.target for site in catalog.calls}
        )

    def test_every_catalog_registration_is_annotated(self, repo_graph):
        catalog_refs = [
            ref
            for ref in repo_graph.lazy_refs
            if ref.path == "src/repro/api/catalog.py"
        ]
        assert len(catalog_refs) >= 30
        assert all(
            ref.registry is not None and ref.plugin is not None
            for ref in catalog_refs
        )

    def test_virtual_dispatch_unions_subclass_overrides(self, repo_graph):
        """A call through the abstract ``TPOBuilder`` template method
        gains edges to every concrete ``extend`` override (CHA)."""
        build = repo_graph.functions["repro.tpo.builders:TPOBuilder.build"]
        targets = {site.target for site in build.calls}
        assert "repro.tpo.builders:GridBuilder.extend" in targets
        assert "repro.tpo.builders:MonteCarloBuilder.extend" in targets


class TestCaughtTracking:
    def test_call_sites_record_enclosing_handlers(self, repo_graph):
        info = repo_graph.functions[
            "repro.service.server:_handle_create_session"
        ]
        create_sites = [
            site
            for site in info.calls
            if site.target
            == "repro.service.manager:SessionManager.create_session"
        ]
        assert create_sites
        assert {"TypeError", "ValueError", "TPOSizeError"} <= set(
            create_sites[0].caught
        )

    def test_subclass_aware_is_caught(self, repo_graph):
        # ProtocolError subclasses ValueError in the protocol module.
        assert repo_graph.is_caught("ProtocolError", frozenset({"ValueError"}))
        assert not repo_graph.is_caught("KeyError", frozenset({"ValueError"}))
        assert repo_graph.is_caught("KeyError", frozenset({"*"}))


class TestDataflow:
    def test_async_sync_blocking_chain(self, rpc101_bad_graph):
        """The canonical interprocedural case: taint enters at ``open``
        three frames below the coroutine and propagates all the way up."""
        graph = rpc101_bad_graph
        seeds = _seed_taints(graph, BLOCKING)
        assert "repro.service.handlers:_write_row" in seeds
        facts = dataflow.taint_closure(graph, seeds)
        handler = "repro.service.handlers:_handle_export"
        assert handler in facts
        chain = dataflow.witness_chain(facts, handler)
        assert chain == [
            "repro.service.handlers:_handle_export",
            "repro.service.handlers:persist_rows",
            "repro.service.handlers:_write_row",
            "open(...)",
        ]

    def test_barriers_stop_propagation(self, rpc101_bad_graph):
        graph = rpc101_bad_graph
        seeds = _seed_taints(graph, BLOCKING)
        facts = dataflow.taint_closure(
            graph,
            seeds,
            barriers=frozenset({"repro.service.handlers:_write_row"}),
        )
        assert "repro.service.handlers:_handle_export" not in facts

    def test_exception_propagation_to_fixed_point(self, repo_graph):
        may_raise = dataflow.propagate_exceptions(repo_graph)
        creator = may_raise[
            "repro.service.manager:SessionManager.create_session"
        ]
        # TPOSizeError escapes the manager (the handler maps it to 413).
        assert "TPOSizeError" in {fact.exc for fact in creator}
        handler = may_raise[
            "repro.service.server:_handle_create_session"
        ]
        assert "TPOSizeError" not in {fact.exc for fact in handler}


class TestGraphDump:
    def test_to_dict_shape(self, repo_graph):
        dump = repo_graph.to_dict()
        assert dump["format_version"] == 1
        assert set(dump["counts"]) == {
            "modules",
            "functions",
            "classes",
            "edges",
            "lazy_refs",
        }
        assert dump["counts"]["modules"] == len(dump["modules"])
        assert dump["counts"]["functions"] == len(dump["functions"])
        assert dump["counts"]["edges"] == len(dump["edges"])
        assert all(len(edge) == 2 for edge in dump["edges"])
        assert dump["counts"]["lazy_refs"] == len(dump["lazy_refs"])
        assert "open" in dump["external_calls"]
