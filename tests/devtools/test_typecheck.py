"""Tests for the ratcheted mypy gate (``repro.devtools.typecheck``).

mypy is a dev-only dependency the container may not have, so everything
here except the final integration test runs without it: output parsing,
ceiling loading, the missing-mypy skip path, and the committed baseline's
shape are all plain unit tests.
"""

import json
from pathlib import Path

import pytest

from repro.devtools import typecheck

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParseErrorCount:
    def test_summary_line_wins(self):
        output = (
            "src/repro/api/specs.py:10: error: Missing return  [no-untyped-def]\n"
            "Found 7 errors in 3 files (checked 41 source files)\n"
        )
        assert typecheck.parse_error_count(output) == 7

    def test_single_error_summary(self):
        assert (
            typecheck.parse_error_count(
                "Found 1 error in 1 file (checked 2 source files)\n"
            )
            == 1
        )

    def test_clean_run(self):
        assert (
            typecheck.parse_error_count(
                "Success: no issues found in 41 source files\n"
            )
            == 0
        )

    def test_fallback_counts_error_lines(self):
        # A crash that still printed diagnostics must not read as clean.
        output = (
            "src/a.py:1: error: boom  [misc]\n"
            "src/b.py:2: error: boom  [misc]\n"
            "Traceback (most recent call last):\n"
        )
        assert typecheck.parse_error_count(output) == 2


class TestBaseline:
    def test_load_max_errors(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"max_errors": 12}))
        assert typecheck.load_max_errors(path) == 12

    @pytest.mark.parametrize("bad", [-1, "12", 1.5, None])
    def test_rejects_non_counting_ceilings(self, tmp_path, bad):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"max_errors": bad}))
        with pytest.raises((ValueError, TypeError)):
            typecheck.load_max_errors(path)

    def test_committed_baseline_is_valid(self):
        ceiling = typecheck.load_max_errors(
            REPO_ROOT / typecheck.DEFAULT_BASELINE
        )
        assert ceiling >= 0

    def test_typed_core_targets_exist(self):
        for target in typecheck.TYPED_CORE:
            assert (REPO_ROOT / target).is_dir(), target


class TestMissingMypy:
    def test_gate_skips_cleanly_without_mypy(self, monkeypatch, capsys):
        monkeypatch.setattr(typecheck, "mypy_available", lambda: False)
        assert typecheck.main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "mypy is not installed" in out
        assert "skipping" in out

    def test_strict_report_also_skips(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(typecheck, "mypy_available", lambda: False)
        report = tmp_path / "report.txt"
        assert (
            typecheck.main(
                ["--root", str(REPO_ROOT), "--strict-report", str(report)]
            )
            == 0
        )
        assert not report.exists()


@pytest.mark.skipif(
    not typecheck.mypy_available(), reason="mypy not installed"
)
class TestIntegration:
    def test_gate_is_green_on_the_repo(self):
        assert typecheck.main(["--root", str(REPO_ROOT)]) == 0

    def test_strict_report_writes_artifact(self, tmp_path):
        report = tmp_path / "strict.txt"
        assert (
            typecheck.main(
                ["--root", str(REPO_ROOT), "--strict-report", str(report)]
            )
            == 0
        )
        assert report.exists()
        assert "mypy --strict report" in report.read_text()
