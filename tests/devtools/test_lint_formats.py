"""Renderer unit tests for :mod:`repro.devtools.formats` — the one
text/json/github implementation behind both ``repro lint`` and
``repro check``.

The CLI tests exercise the renderers end-to-end on well-behaved
fixtures; these tests pin the hostile-input corners: GitHub
workflow-command escaping (``%``, newlines, ``::`` in messages and
paths) and the JSON round-trip of severity and fingerprint fields.
"""

from __future__ import annotations

import json

from repro.devtools.baseline import BaselineEntry
from repro.devtools.findings import SEVERITIES, Violation
from repro.devtools.formats import (
    render,
    render_github,
    render_json,
    render_text,
)


def make_violation(**overrides):
    base = dict(
        rule="RPL001",
        path="src/repro/sampling.py",
        line=12,
        col=5,
        message="unseeded RNG",
        line_text="rng = np.random.default_rng()",
        severity="error",
    )
    base.update(overrides)
    return Violation(**base)


class TestGithubEscaping:
    def test_percent_is_escaped_first(self):
        # A pre-escaped "%0A" in the message must survive as literal
        # text, not turn into a newline: % -> %25 must run first.
        out = render_github(
            [make_violation(message="100% of cases; literal %0A token")],
            [],
            [],
        )
        line = out.splitlines()[0]
        assert "100%25 of cases" in line
        assert "%250A" in line
        assert "%0A token" not in line

    def test_newlines_in_message_do_not_split_the_command(self):
        out = render_github(
            [make_violation(message="first line\nsecond line\rthird")],
            [],
            [],
        )
        command_lines = [
            line for line in out.splitlines() if line.startswith("::")
        ]
        assert len(command_lines) == 1
        assert "%0A" in command_lines[0]
        assert "%0D" in command_lines[0]

    def test_double_colon_in_message_stays_in_data_section(self):
        # "::" in the *data* section is safe and must not be mangled —
        # only the single separator after the properties delimits.
        out = render_github(
            [make_violation(message="qname is repro.api:canonical_json")],
            [],
            [],
        )
        line = out.splitlines()[0]
        properties, _, data = line.partition("::")[2].partition("::")
        assert "repro.api:canonical_json" in data
        assert "\n" not in data

    def test_colon_and_comma_in_path_are_property_escaped(self):
        # A hostile path cannot inject extra properties or terminate
        # the property section early.
        out = render_github(
            [make_violation(path="src/re,po:file.py")],
            [],
            [],
        )
        line = out.splitlines()[0]
        assert "file=src/re%2Cpo%3Afile.py" in line
        assert ",line=12" in line

    def test_warning_severity_selects_warning_command(self):
        out = render_github(
            [make_violation(severity="warning")], [], []
        )
        assert out.splitlines()[0].startswith("::warning ")

    def test_stale_entries_render_as_errors(self):
        entry = BaselineEntry(
            rule="RPL002",
            path="src/repro/cache.py",
            line_text="key = str(payload)",
            reason="legacy cache key, tracked in ROADMAP",
        )
        out = render_github([], [], [entry])
        line = out.splitlines()[0]
        assert line.startswith("::error ")
        assert "RPL002 baseline" in line
        assert "stale baseline entry" in line


class TestJsonRoundTrip:
    def test_severity_and_fingerprint_fields_round_trip(self):
        violations = [
            make_violation(severity=severity, rule=f"RPL00{index + 1}")
            for index, severity in enumerate(SEVERITIES)
        ]
        document = json.loads(render_json(violations, [], [], []))
        assert [v["severity"] for v in document["violations"]] == list(
            SEVERITIES
        )
        for raw, violation in zip(document["violations"], violations):
            rebuilt = Violation(**raw)
            assert rebuilt == violation
            assert rebuilt.fingerprint == violation.fingerprint
            assert rebuilt.fingerprint == (
                violation.rule,
                violation.path,
                violation.line_text,
            )

    def test_suppressed_and_stale_sections_round_trip(self):
        suppressed = [make_violation(rule="RPL003")]
        stale = [
            BaselineEntry(
                rule="RPL004",
                path="src/repro/service/server.py",
                line_text="time.sleep(0.1)",
                reason="startup backoff, executor-hopped",
            )
        ]
        document = json.loads(render_json([], suppressed, stale, []))
        assert document["ok"] is False  # stale entries fail the gate
        assert Violation(**document["suppressed"][0]) == suppressed[0]
        assert BaselineEntry(**document["stale_baseline"][0]) == stale[0]
        assert document["counts"] == {
            "violations": 0,
            "suppressed": 1,
            "stale_baseline": 1,
        }


class TestRenderDispatch:
    def test_render_selects_the_right_backend(self):
        violation = make_violation()
        assert render("text", [violation], [], [], []) == render_text(
            [violation], [], []
        )
        assert render("github", [violation], [], [], []) == render_github(
            [violation], [], []
        )
        assert json.loads(render("json", [violation], [], [], []))

    def test_text_summary_line(self):
        out = render_text([make_violation()], [], [])
        assert out.splitlines()[-1] == (
            "FAILED: 1 violation(s), 0 baselined, 0 stale baseline entr(ies)"
        )
        assert render_text([], [], []).startswith("ok: ")
