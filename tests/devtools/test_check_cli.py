"""CLI contract of ``repro check`` / ``python -m repro.devtools.analysis``:
exit codes, formats, the graph dump artifact, and the baseline ratchet.

Mirrors ``test_lint_cli.py`` — the two gates share one exit-code
convention (0 clean / 1 findings or stale baseline / 2 usage error) and
one baseline/render implementation (:mod:`repro.devtools.gate`)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.analysis.cli import main as check_main
from repro.devtools.formats import JSON_FORMAT_VERSION

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "rpc103" / "bad"
OK = FIXTURES / "rpc103" / "ok"


def test_exit_zero_on_clean_tree(capsys):
    assert check_main(["--root", str(OK)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_exit_nonzero_on_violation_fixture(capsys):
    assert check_main(["--root", str(BAD)]) == 1
    out = capsys.readouterr().out
    assert "RPC103" in out
    assert "FAILED" in out


@pytest.mark.parametrize(
    "code", ["rpc101", "rpc102", "rpc103", "rpc104"]
)
def test_exit_codes_on_every_fixture_pair(code):
    assert check_main(["--root", str(FIXTURES / code / "bad")]) == 1
    assert check_main(["--root", str(FIXTURES / code / "ok")]) == 0


def test_repro_cli_check_verb(capsys):
    assert repro_main(["check", "--root", str(BAD)]) == 1
    assert "RPC103" in capsys.readouterr().out
    assert repro_main(["check", "--root", str(OK)]) == 0
    capsys.readouterr()


def test_json_format_schema(capsys):
    assert check_main(["--root", str(BAD), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["format_version"] == JSON_FORMAT_VERSION
    assert document["ok"] is False
    assert document["counts"]["violations"] == len(document["violations"])
    for violation in document["violations"]:
        assert violation["rule"] == "RPC103"
        assert violation["severity"] in ("error", "warning")
    rule_rows = {rule["code"] for rule in document["rules"]}
    assert rule_rows == {"RPC101", "RPC102", "RPC103", "RPC104"}


def test_github_format_annotations(capsys):
    assert check_main(["--root", str(BAD), "--format", "github"]) == 1
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("::error")]
    assert lines, out
    assert "file=src/repro/catalog.py" in lines[0]
    assert "title=RPC103" in lines[0]


def test_select_limits_checks(capsys):
    # The rpc103 bad tree only violates RPC103; selecting RPC101 passes.
    assert check_main(["--root", str(BAD), "--select", "RPC101"]) == 0
    capsys.readouterr()


def test_select_unknown_check_is_usage_error(capsys):
    assert check_main(["--root", str(BAD), "--select", "RPC999"]) == 2
    assert "unknown check" in capsys.readouterr().err


def test_missing_package_tree_is_usage_error(tmp_path, capsys):
    assert check_main(["--root", str(tmp_path)]) == 2
    assert "src/repro" in capsys.readouterr().err


def test_list_checks(capsys):
    assert check_main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in ("RPC101", "RPC102", "RPC103", "RPC104"):
        assert code in out


def test_graph_dump_artifact(tmp_path, capsys):
    dump = tmp_path / "artifacts" / "graph.json"
    assert (
        check_main(["--root", str(OK), "--graph-dump", str(dump)]) == 0
    )
    capsys.readouterr()
    document = json.loads(dump.read_text(encoding="utf-8"))
    assert document["format_version"] == 1
    assert document["counts"]["modules"] == 3
    assert "repro.catalog" in document["modules"]
    # The lazy registry edges are part of the artifact.
    texts = {ref["text"] for ref in document["lazy_refs"]}
    assert "repro.widgets:make_widget" in texts


def test_update_baseline_then_pass_then_stale(tmp_path, capsys):
    """The full ratchet lifecycle through the CLI."""
    baseline = tmp_path / "baseline.jsonl"
    # 1. New violations fail without a baseline.
    assert (
        check_main(["--root", str(BAD), "--baseline", str(baseline)]) == 1
    )
    # 2. --update-baseline records them (with TODO reasons to edit).
    assert (
        check_main(
            [
                "--root",
                str(BAD),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert "TODO reason" in capsys.readouterr().out
    # 3. Baselined violations now pass.
    assert (
        check_main(["--root", str(BAD), "--baseline", str(baseline)]) == 0
    )
    # 4. Pointing the same baseline at the fixed tree flags every entry
    #    as stale — the ratchet only turns one way.
    assert (
        check_main(["--root", str(OK), "--baseline", str(baseline)]) == 1
    )
    assert "stale" in capsys.readouterr().out
    # 5. ... unless stale checking is explicitly waived.
    assert (
        check_main(
            [
                "--root",
                str(OK),
                "--baseline",
                str(baseline),
                "--no-stale-check",
            ]
        )
        == 0
    )


class TestSharedExitCodeConvention:
    """Satellite: ``repro lint`` and ``repro check`` pin the same codes
    (2 = usage, 1 = findings/gate failure, 0 = clean) as ``repro eval``."""

    def test_usage_error_is_2_for_both(self, capsys):
        assert repro_main(["lint", "--select", "NOPE", "src"]) == 2
        assert repro_main(["check", "--select", "NOPE"]) == 2
        capsys.readouterr()

    def test_findings_are_1_for_both(self, capsys):
        lint_bad = FIXTURES / "rpl008" / "bad"
        assert repro_main(["lint", "--root", str(lint_bad), "src"]) == 1
        assert repro_main(["check", "--root", str(BAD)]) == 1
        capsys.readouterr()

    def test_clean_is_0_for_both(self, capsys):
        lint_ok = FIXTURES / "rpl008" / "ok"
        assert repro_main(["lint", "--root", str(lint_ok), "src"]) == 0
        assert repro_main(["check", "--root", str(OK)]) == 0
        capsys.readouterr()
