"""Fixture-based self-tests: every RPC check has a passing and a failing
example tree.

Each ``tests/devtools/fixtures/rpc10x/{ok,bad}`` directory is a mini
repo root mirroring the real ``src/repro`` layout; the bad tree violates
exactly its check's invariant *interprocedurally* (no single file would
trip a per-file RPL rule), the ok tree shows the sanctioned way to do
the same work.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analysis import CHECKS, build_graph, run_checks

FIXTURES = Path(__file__).parent / "fixtures"
ALL_CODES = sorted(CHECKS.available())

#: Pinned finding counts per bad fixture — a check that silently loses
#: (or gains) coverage shows up as a count flip, not just "non-empty".
EXPECTED_BAD_COUNTS = {
    "RPC101": 1,  # the 3-frame async → sync → sync → open() chain
    "RPC102": 2,  # canonical_json and content_key both reach time.time
    "RPC103": 3,  # missing attr, missing module, unregistered literal
    "RPC104": 2,  # KeyError two frames down; RuntimeError past a filter
}


def run_on(root: Path, code: str):
    graph = build_graph(root)
    return run_checks(graph, [CHECKS.create(code)])


def test_every_check_has_both_fixtures():
    assert ALL_CODES == ["RPC101", "RPC102", "RPC103", "RPC104"]
    for code in ALL_CODES:
        tree = FIXTURES / code.lower()
        assert (tree / "ok" / "src").is_dir(), f"missing ok fixture for {code}"
        assert (
            tree / "bad" / "src"
        ).is_dir(), f"missing bad fixture for {code}"


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_fails(code):
    violations = run_on(FIXTURES / code.lower() / "bad", code)
    assert violations, f"{code} found nothing in its violation fixture"
    assert {v.rule for v in violations} == {code}
    for violation in violations:
        assert violation.line > 0
        assert violation.message
        assert violation.line_text


@pytest.mark.parametrize("code", ALL_CODES)
def test_ok_fixture_passes(code):
    violations = run_on(FIXTURES / code.lower() / "ok", code)
    assert violations == [], (
        f"{code} false positives: "
        + "; ".join(f"{v.path}:{v.line} {v.message}" for v in violations)
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_expected_bad_finding_counts(code):
    violations = run_on(FIXTURES / code.lower() / "bad", code)
    assert len(violations) == EXPECTED_BAD_COUNTS[code]


@pytest.mark.parametrize("code", ALL_CODES)
def test_disabling_the_check_hides_its_findings(code):
    """Each bad tree is clean under every *other* check — the findings
    exist if and only if the owning check runs, so disabling a check
    demonstrably flips its fixture from failing to passing."""
    others = [c for c in ALL_CODES if c != code]
    graph = build_graph(FIXTURES / code.lower() / "bad")
    violations = run_checks(
        graph, [CHECKS.create(other) for other in others]
    )
    assert violations == [], (
        f"bad fixture for {code} is not isolated: "
        + "; ".join(f"{v.rule} {v.path}:{v.line}" for v in violations)
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_checks_are_documented(code):
    check = CHECKS.create(code)
    assert check.code == code
    assert check.name
    assert check.rationale
    assert check.severity in ("error", "warning")


def test_witness_chains_are_readable():
    """RPC101's message prints the full call chain down to the primitive."""
    (violation,) = run_on(FIXTURES / "rpc101" / "bad", "RPC101")
    assert (
        "repro.service.handlers:_handle_export"
        " -> repro.service.handlers:persist_rows"
        " -> repro.service.handlers:_write_row"
        " -> open(...)" in violation.message
    )


def test_rpc104_names_the_origin_frame():
    violations = run_on(FIXTURES / "rpc104" / "bad", "RPC104")
    by_message = "\n".join(v.message for v in violations)
    assert "raised in repro.service.handlers:_load_session" in by_message
    assert "raised in repro.service.handlers:_reset_engine" in by_message


def test_real_repo_is_clean():
    """The committed tree satisfies all four interprocedural invariants
    (the one real finding — TPOSizeError escaping the create handler as
    an opaque 500 — was fixed, not baselined)."""
    repo_root = Path(__file__).resolve().parents[2]
    graph = build_graph(repo_root)
    checks = [CHECKS.create(code) for code in ALL_CODES]
    violations = run_checks(graph, checks)
    assert violations == [], "\n".join(
        f"{v.rule} {v.path}:{v.line} {v.message}" for v in violations
    )
