"""CLI contract of ``repro lint`` / ``python -m repro.devtools.lint``:
exit codes, the JSON schema, GitHub annotations, baseline flags."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.formats import JSON_FORMAT_VERSION

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "rpl008" / "bad"
OK = FIXTURES / "rpl008" / "ok"


def test_exit_zero_on_clean_tree(capsys):
    assert lint_main(["--root", str(OK), "src"]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_exit_nonzero_on_violation_fixture(capsys):
    assert lint_main(["--root", str(BAD), "src"]) == 1
    out = capsys.readouterr().out
    assert "RPL008" in out
    assert "FAILED" in out


@pytest.mark.parametrize(
    "code", [f"rpl{i:03d}" for i in range(1, 11)]
)
def test_exit_nonzero_on_every_violation_fixture(code):
    assert lint_main(["--root", str(FIXTURES / code / "bad"), "src"]) == 1
    assert lint_main(["--root", str(FIXTURES / code / "ok"), "src"]) == 0


def test_repro_cli_lint_verb(capsys):
    assert repro_main(["lint", "--root", str(BAD), "src"]) == 1
    assert "RPL008" in capsys.readouterr().out
    assert repro_main(["lint", "--root", str(OK), "src"]) == 0
    capsys.readouterr()


def test_json_format_schema(capsys):
    assert lint_main(["--root", str(BAD), "--format", "json", "src"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["format_version"] == JSON_FORMAT_VERSION
    assert document["ok"] is False
    assert set(document["counts"]) == {
        "violations",
        "suppressed",
        "stale_baseline",
    }
    assert document["counts"]["violations"] == len(document["violations"])
    for violation in document["violations"]:
        assert set(violation) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "line_text",
            "severity",
        }
        assert violation["rule"] == "RPL008"
        assert violation["severity"] in ("error", "warning")
    rule_rows = {rule["code"]: rule for rule in document["rules"]}
    assert set(rule_rows) == {f"RPL{i:03d}" for i in range(1, 11)}
    for rule in rule_rows.values():
        assert rule["name"] and rule["rationale"]


def test_github_format_annotations(capsys):
    assert lint_main(["--root", str(BAD), "--format", "github", "src"]) == 1
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("::error")]
    assert lines, out
    assert "file=src/repro/ranking.py" in lines[0]
    assert "title=RPL008" in lines[0]
    assert ",line=" in lines[0]


def test_select_limits_rules(capsys):
    # The rpl008 bad tree only violates RPL008; selecting RPL001 passes.
    assert (
        lint_main(
            ["--root", str(BAD), "--select", "RPL001", "src"]
        )
        == 0
    )
    capsys.readouterr()


def test_select_unknown_rule_is_usage_error(capsys):
    assert lint_main(["--root", str(BAD), "--select", "RPL999", "src"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for index in range(1, 10):
        assert f"RPL00{index}" in out


def test_update_baseline_then_pass_then_stale(tmp_path, capsys):
    """The full ratchet lifecycle through the CLI."""
    baseline = tmp_path / "baseline.jsonl"
    # 1. New violations fail without a baseline.
    assert (
        lint_main(["--root", str(BAD), "--baseline", str(baseline), "src"])
        == 1
    )
    # 2. --update-baseline records them (with TODO reasons to edit).
    assert (
        lint_main(
            [
                "--root",
                str(BAD),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "src",
            ]
        )
        == 0
    )
    assert "TODO reason" in capsys.readouterr().out
    # 3. Baselined violations now pass.
    assert (
        lint_main(["--root", str(BAD), "--baseline", str(baseline), "src"])
        == 0
    )
    # 4. Pointing the same baseline at the fixed tree flags every entry
    #    as stale — the ratchet only turns one way.
    assert (
        lint_main(["--root", str(OK), "--baseline", str(baseline), "src"])
        == 1
    )
    assert "stale" in capsys.readouterr().out
    # 5. ... unless stale checking is explicitly waived.
    assert (
        lint_main(
            [
                "--root",
                str(OK),
                "--baseline",
                str(baseline),
                "--no-stale-check",
                "src",
            ]
        )
        == 0
    )
