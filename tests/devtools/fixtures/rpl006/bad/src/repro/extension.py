"""Fixture: deprecated shims and raw registry pokes."""

from repro.core import make_policy
from repro.api.catalog import POLICIES


def install(factory):
    POLICIES["mine"] = factory
    del POLICIES["mine"]
    return make_policy("naive")
