"""Fixture: the typed repro.api front door."""

from repro.api.catalog import POLICIES
from repro.api.specs import PolicySpec


def install(factory):
    POLICIES.register("mine", factory, overwrite=True)
    return PolicySpec("naive")
