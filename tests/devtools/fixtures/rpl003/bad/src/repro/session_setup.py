"""Fixture: mutating frozen specs after construction."""

from repro.api.specs import InstanceSpec


def grow(spec):
    object.__setattr__(spec, "n", spec.n + 1)
    return spec


def rebuild():
    spec = InstanceSpec(n=5, k=2, workload="uniform", seed=0)
    spec.n = 10
    return spec
