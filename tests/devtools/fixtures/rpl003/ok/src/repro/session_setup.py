"""Fixture: specs are replaced, never mutated; self-canonicalization
in a frozen class's own __post_init__ is the defining module's right."""

import dataclasses

from repro.api.specs import InstanceSpec


@dataclasses.dataclass(frozen=True)
class Window:
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            lo, hi = self.hi, self.lo
            object.__setattr__(self, "lo", lo)
            object.__setattr__(self, "hi", hi)


def rebuild():
    spec = InstanceSpec(n=5, k=2, workload="uniform", seed=0)
    return dataclasses.replace(spec, n=10)
