"""Fixture: None defaults materialized inside."""


def rank(items, weights=None, cache=None):
    weights = [] if weights is None else weights
    cache = {} if cache is None else cache
    cache[len(items)] = weights
    return sorted(items)


def configure(*, options=None):
    return dict(options or {})
