"""Fixture: shared mutable defaults on public entry points."""


def rank(items, weights=[], cache={}):
    cache[len(items)] = weights
    return sorted(items)


def configure(*, options=dict()):
    return options
