"""Fixture: the sanctioned derived-Generator idiom."""

import numpy as np

from repro.utils.rng import derive_seed


def sample(n, rng: np.random.Generator):
    seq = np.random.SeedSequence(derive_seed(7, "sample"))
    child = np.random.default_rng(seq)
    return child.random(n) + rng.random(n)
