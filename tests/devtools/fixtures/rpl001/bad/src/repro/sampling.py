"""Fixture: every way to break process-stable seeding."""

import random

import numpy as np


def sample(n):
    rng = np.random.default_rng()
    np.random.seed(0)
    values = np.random.rand(n)
    return random.choice(list(values))
