"""Fixture: the one module allowed to own the digest recipe."""

import hashlib


def content_key(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()
