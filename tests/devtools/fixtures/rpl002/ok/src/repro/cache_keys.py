"""Fixture: everyone else routes through the canonical recipe."""

from repro.api.canonical import content_key


def cache_key(spec):
    return content_key(spec)
