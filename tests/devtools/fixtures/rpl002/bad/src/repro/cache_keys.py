"""Fixture: ad-hoc digests feeding a cache key."""

import hashlib


def cache_key(spec):
    salted = hash((spec["n"], spec["k"]))
    digest = hashlib.sha1(repr(spec).encode()).hexdigest()
    return f"{salted}-{digest}"
