"""OK: every exception escaping a handler is protocol-mapped.

The helper still raises ``KeyError`` / ``RuntimeError`` internally, but
each call site catches the concrete type and re-raises one of the
envelope-mapped classes (``HttpError`` / ``UnknownSessionError``), so
clients always see a structured error.
"""


class HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class UnknownSessionError(KeyError):
    pass


_SESSIONS = {}


def _load_session(session_id):
    if session_id not in _SESSIONS:
        raise UnknownSessionError(session_id)
    return _SESSIONS[session_id]


def _reset_engine(session):
    raise RuntimeError("engine wedged")


async def _handle_snapshot(ctx):
    session = _load_session(ctx.params["session_id"])
    return {"id": ctx.params["session_id"], "state": session}


async def _handle_reset(ctx):
    try:
        _reset_engine(ctx.session)
    except RuntimeError as exc:
        raise HttpError(500, str(exc)) from None
    return {"ok": True}
