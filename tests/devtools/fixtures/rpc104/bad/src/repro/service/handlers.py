"""BAD: unmapped exception types escape the ``/v1`` handlers.

``_load_session`` raises a bare ``KeyError`` two frames below
``_handle_snapshot`` — nothing on the way up maps it, so the client gets
an opaque 500.  ``_handle_reset`` catches ``ValueError`` but the helper
chain raises ``RuntimeError``, which sails straight through the filter.
"""


class HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


_SESSIONS = {}


def _load_session(session_id):
    if session_id not in _SESSIONS:
        raise KeyError(session_id)
    return _SESSIONS[session_id]


def _snapshot_payload(session_id):
    session = _load_session(session_id)
    return {"id": session_id, "state": session}


def _reset_engine(session):
    raise RuntimeError("engine wedged")


async def _handle_snapshot(ctx):
    return _snapshot_payload(ctx.params["session_id"])


async def _handle_reset(ctx):
    try:
        _reset_engine(ctx.session)
    except ValueError as exc:
        raise HttpError(400, str(exc)) from None
    return {"ok": True}
