"""Widget factories — note there is no ``make_gadget`` here."""


def make_widget():
    return {"kind": "widget"}
