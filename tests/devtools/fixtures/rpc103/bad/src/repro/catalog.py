"""BAD: dangling lazy registrations and an unregistered literal lookup.

``repro.widgets`` exists but exports no ``make_gadget``;
``repro.missing`` does not exist at all; and the ``create`` call names a
plugin nobody registered.
"""

from repro.registry import Registry

WIDGETS = Registry("widget")
WIDGETS.register("widget", "repro.widgets:make_widget")
WIDGETS.register("gadget", "repro.widgets:make_gadget")
WIDGETS.register("ghost", "repro.missing:make_ghost")


def default_widget():
    return WIDGETS.create("wdiget")
