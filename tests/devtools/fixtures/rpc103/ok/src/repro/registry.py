"""Minimal registry stand-in so the fixture tree is self-contained."""


class Registry:
    def __init__(self, kind):
        self.kind = kind
        self._factories = {}

    def register(self, name, factory):
        self._factories[name] = factory

    def create(self, name):
        return self._factories[name]()
