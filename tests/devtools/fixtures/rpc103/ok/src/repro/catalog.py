"""OK: every lazy registration resolves and lookups use registered
names."""

from repro.registry import Registry

WIDGETS = Registry("widget")
WIDGETS.register("widget", "repro.widgets:make_widget")
WIDGETS.register("gadget", "repro.widgets:make_gadget")


def default_widget():
    return WIDGETS.create("widget")
