"""Widget factories — both registered attributes exist."""


def make_widget():
    return {"kind": "widget"}


def make_gadget():
    return {"kind": "gadget"}
