"""Fixture: blocking work hops through an executor; nested sync defs
are the executor's job and therefore exempt."""

import asyncio


async def handle_dump(request, loop):
    def _read():
        with open("dump.json") as handle:
            return handle.read()

    payload = await loop.run_in_executor(None, _read)
    await asyncio.sleep(0.05)
    return payload


def load_config(path):
    with open(path) as handle:
        return handle.read()
