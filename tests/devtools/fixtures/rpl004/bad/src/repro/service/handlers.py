"""Fixture: blocking calls directly inside service coroutine bodies."""

import subprocess
import time


async def handle_dump(request):
    with open("dump.json") as handle:
        payload = handle.read()
    time.sleep(0.05)
    subprocess.run(["sync"])
    return payload


async def handle_socket(sock):
    return sock.recv(4096)
