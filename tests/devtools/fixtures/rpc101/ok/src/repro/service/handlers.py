"""OK: the blocking write happens behind an executor hop.

``_write_row`` is handed to ``run_in_executor`` *by reference* — it is
never called from the coroutine, so no call edge exists and the event
loop is never blocked.  The pure helpers on the request path do no I/O.
"""

import asyncio
import json


def _write_row(path, row):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row) + "\n")


def shape_payload(rows):
    return {"rows": rows, "count": len(rows)}


async def _handle_export(ctx):
    rows = ctx.collect()
    loop = asyncio.get_running_loop()
    for row in rows:
        await loop.run_in_executor(None, _write_row, ctx.export_path, row)
    return shape_payload(rows)
