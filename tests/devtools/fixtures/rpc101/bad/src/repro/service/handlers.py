"""BAD: a coroutine reaches blocking I/O through two sync helpers.

No single line here trips the per-file async rule (RPL004): the
``open()`` lives three frames away from the ``async def``.  Only the
interprocedural closure sees the chain
``_handle_export -> persist_rows -> _write_row -> open``.
"""

import json


def _write_row(path, row):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row) + "\n")


def persist_rows(path, rows):
    for row in rows:
        _write_row(path, row)


async def _handle_export(ctx):
    rows = ctx.collect()
    persist_rows(ctx.export_path, rows)
    return {"exported": len(rows)}
