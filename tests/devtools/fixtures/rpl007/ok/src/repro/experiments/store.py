"""Fixture: the helper module itself is the sanctioned append site."""

import json


def append_line(path, record):
    with open(path, "a") as handle:
        handle.write(json.dumps(record) + "\n")
