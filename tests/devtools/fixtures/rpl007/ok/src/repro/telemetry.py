"""Fixture: appends route through the torn-tail-safe helper class."""

from repro.service.manager import EventLog


def log_event(path, event):
    EventLog(path).append(event)


def read_events(path):
    with open(path) as handle:
        return handle.readlines()
