"""Fixture: a raw append-mode JSONL write (torn-tail unsafe)."""

import json


def log_event(path, event):
    with open(path, "a") as handle:
        handle.write(json.dumps(event) + "\n")
