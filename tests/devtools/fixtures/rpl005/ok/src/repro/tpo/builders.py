"""Fixture: the contract dtypes spelled out (kwarg or positional)."""

import numpy as np


def allocate(width):
    tuple_ids = np.empty(width, dtype=np.int32)
    parent_idx = np.zeros(width, np.intp)
    probs = np.array([1.0, 2.0], dtype=np.float64)
    mirror = np.empty_like(probs)
    return tuple_ids, parent_idx, probs, mirror
