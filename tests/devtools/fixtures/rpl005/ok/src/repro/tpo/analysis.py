"""Fixture: files outside the hot-path set may rely on inference."""

import numpy as np


def summarize(values):
    return np.zeros(3) + np.asarray(values).mean()
