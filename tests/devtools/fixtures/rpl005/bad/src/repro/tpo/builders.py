"""Fixture: dtype-less allocations in a level-table hot path."""

import numpy as np


def allocate(width):
    tuple_ids = np.empty(width)
    probs = np.zeros((width, 3))
    seeds = np.array([1, 2, 3])
    pad = np.ones(width)
    return tuple_ids, probs, seeds, pad
