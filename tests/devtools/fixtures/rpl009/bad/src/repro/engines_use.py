"""Fixture: engines constructed directly, bypassing EngineSpec."""

from repro.tpo.builders import GridBuilder, MonteCarloBuilder

import repro.tpo.builders as builders


def build_spaces(scores, k):
    grid = GridBuilder(resolution=800)
    mc = MonteCarloBuilder(samples=1000, seed=7)
    exact = builders.ExactBuilder()
    return [b.build(scores, k) for b in (grid, mc, exact)]
