"""Fixture: engines built through the typed spec surface."""

from repro.api.catalog import ENGINES
from repro.api.specs import EngineSpec


def build_spaces(scores, k):
    grid = EngineSpec("grid", {"resolution": 800}).build()
    mc = ENGINES.create("mc", samples=1000, seed=7)
    return [b.build(scores, k) for b in (grid, mc)]
