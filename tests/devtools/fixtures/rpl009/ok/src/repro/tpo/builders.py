"""Fixture: the defining module may construct engines directly."""


class GridBuilder:
    def __init__(self, resolution=1024):
        self.resolution = resolution


def make_default():
    return GridBuilder(resolution=1024)
