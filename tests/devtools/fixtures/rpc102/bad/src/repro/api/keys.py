"""BAD: a content-key producer reaches a wall clock via a helper.

``content_key`` itself contains no nondeterminism — the ``time.time()``
hides inside ``_stamp``, one call down, so only the interprocedural
taint closure flags it.
"""

import hashlib
import json
import time


def _stamp(payload):
    enriched = dict(payload)
    enriched["at"] = time.time()
    return enriched


def canonical_json(payload):
    return json.dumps(_stamp(payload), sort_keys=True)


def content_key(payload):
    return hashlib.blake2b(canonical_json(payload).encode()).hexdigest()
