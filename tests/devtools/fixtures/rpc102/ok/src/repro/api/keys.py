"""OK: the content key is a pure function of its payload."""

import hashlib
import json


def canonical_json(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload):
    return hashlib.blake2b(canonical_json(payload).encode()).hexdigest()


def wall_clock_label():
    # Nondeterminism is fine outside the content-key call paths.
    import time

    return f"run-{time.time():.0f}"
