"""Fixture: eval code through the sanctioned entry points."""

import numpy as np

from repro.api.run import replay_session, run_session
from repro.utils.rng import derive_seed


def run_eval_cell(spec, answers):
    rng = np.random.default_rng(derive_seed(spec.instance.seed, "eval"))
    result = run_session(spec)
    replay = replay_session(spec, answers)
    return result, replay, rng
