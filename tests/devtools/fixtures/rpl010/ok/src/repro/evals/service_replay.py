"""Fixture: the allowlisted service-path module may use the manager."""

from repro.service.manager import SessionManager


def run_golden_service_cell(case):
    manager = SessionManager()
    return manager.create_session(case["spec"])
