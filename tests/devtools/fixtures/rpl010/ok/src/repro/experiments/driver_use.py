"""Fixture: outside src/repro/evals/ the rule does not apply."""

from repro.core.session import UncertaintyReductionSession


def run_driver(distributions, k, crowd):
    return UncertaintyReductionSession(distributions, k, crowd)
