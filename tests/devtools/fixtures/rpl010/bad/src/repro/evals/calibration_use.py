"""Fixture: eval code bypassing the sanctioned repro.api.run path."""

import numpy as np

import repro.service.manager as manager_mod
from repro.core.session import UncertaintyReductionSession


def run_eval_cell(distributions, k, crowd):
    rng = np.random.default_rng(1234)
    session = UncertaintyReductionSession(distributions, k, crowd, rng=rng)
    manager = manager_mod.SessionManager()
    return session, manager, rng
