"""Fixture-based self-tests: every RPL rule has a passing and a failing
example tree.

Each ``tests/devtools/fixtures/<rule>/{ok,bad}`` directory is a mini repo
root mirroring the real ``src/repro`` layout, so the path scoping of
path-sensitive rules (RPL004 service-only, RPL005 hot-path files,
allowlisted digest/append sites) is exercised for real, not mocked.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import LINT_RULES, Checker

FIXTURES = Path(__file__).parent / "fixtures"
ALL_CODES = sorted(LINT_RULES.available())


def run_on(root: Path, code: str):
    checker = Checker([LINT_RULES.create(code)])
    return checker.check_paths(root, [Path("src")])


def test_every_rule_has_both_fixtures():
    assert ALL_CODES == [f"RPL{i:03d}" for i in range(1, 11)]
    for code in ALL_CODES:
        tree = FIXTURES / code.lower()
        assert (tree / "ok" / "src").is_dir(), f"missing ok fixture for {code}"
        assert (tree / "bad" / "src").is_dir(), f"missing bad fixture for {code}"


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_fails(code):
    violations = run_on(FIXTURES / code.lower() / "bad", code)
    assert violations, f"{code} found nothing in its violation fixture"
    assert {v.rule for v in violations} == {code}
    for violation in violations:
        assert violation.line > 0
        assert violation.message
        assert violation.line_text


@pytest.mark.parametrize("code", ALL_CODES)
def test_ok_fixture_passes(code):
    violations = run_on(FIXTURES / code.lower() / "ok", code)
    assert violations == [], (
        f"{code} false positives: "
        + "; ".join(f"{v.path}:{v.line} {v.message}" for v in violations)
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_rules_are_documented(code):
    rule = LINT_RULES.create(code)
    assert rule.code == code
    assert rule.name
    assert rule.rationale
    assert (rule.__doc__ or "").strip(), f"{code} has no docstring"


def test_expected_bad_finding_counts():
    """Pin the per-fixture finding counts so rule regressions surface."""
    expected = {
        "RPL001": 4,  # import random, default_rng(), seed(), legacy rand()
        "RPL002": 2,  # hash() + hashlib import
        "RPL003": 2,  # object.__setattr__ + attribute store on spec
        "RPL004": 4,  # open, time.sleep, subprocess.run, sock.recv
        "RPL005": 4,  # empty/zeros/array/ones without dtype
        "RPL006": 3,  # shim import + registry setitem + delitem
        "RPL007": 1,  # raw append-mode open
        "RPL008": 3,  # weights=[], cache={}, options=dict()
        "RPL009": 3,  # GridBuilder + MonteCarloBuilder + dotted ExactBuilder
        "RPL010": 4,  # session import + default_rng + 2 direct constructions
    }
    actual = {
        code: len(run_on(FIXTURES / code.lower() / "bad", code))
        for code in ALL_CODES
    }
    assert actual == expected


def test_syntax_error_is_reported(tmp_path):
    target = tmp_path / "src" / "repro" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:\n")
    violations = Checker().check_paths(tmp_path, [Path("src")])
    assert [v.rule for v in violations] == ["RPL000"]
    assert "does not parse" in violations[0].message


def test_non_first_party_paths_are_ignored(tmp_path):
    target = tmp_path / "scripts" / "tool.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\n\n\ndef f(x=[]):\n    return x\n")
    assert Checker().check_paths(tmp_path, [Path("scripts")]) == []


def test_numpy_alias_resolution(tmp_path):
    """`import numpy as anything` is tracked, not just the np idiom."""
    target = tmp_path / "src" / "repro" / "tpo" / "builders.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import numpy as nump\n\n\ndef f(n):\n    return nump.zeros(n)\n"
    )
    violations = Checker().check_paths(tmp_path, [Path("src")])
    assert [v.rule for v in violations] == ["RPL005"]


def test_repo_src_is_lint_clean_modulo_baseline():
    """The ratchet itself: the real src/ tree stays clean forever.

    Uses the committed baseline, so a deliberate, reason-annotated
    exception does not fail the suite — but any new violation does.
    """
    from repro.devtools.lint import apply_baseline, load_baseline

    root = Path(__file__).resolve().parents[2]
    violations = Checker().check_paths(root, [Path("src")])
    entries = load_baseline(root / "lint_baseline.jsonl")
    result = apply_baseline(violations, entries)
    assert result.new == [], "; ".join(
        f"{v.path}:{v.line} {v.rule} {v.message}" for v in result.new
    )
    assert result.stale == [], (
        "stale baseline entries: "
        + "; ".join(e.line_text for e in result.stale)
    )
    for entry in entries:
        assert entry.reason and "TODO" not in entry.reason, (
            f"baseline entry for {entry.path} needs a real reason"
        )
