"""Baseline ratchet semantics: new fails, baselined passes, stale flagged."""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.lint.baseline import (
    PLACEHOLDER_REASON,
    BaselineEntry,
    apply_baseline,
    entries_from_violations,
    load_baseline,
    save_baseline,
)
from repro.devtools.lint.core import Violation


def make_violation(rule="RPL008", path="src/repro/x.py", line=3,
                   line_text="def f(x=[]):"):
    return Violation(
        rule=rule,
        path=path,
        line=line,
        col=1,
        message="mutable default",
        line_text=line_text,
    )


def test_new_violation_is_not_suppressed():
    result = apply_baseline([make_violation()], [])
    assert len(result.new) == 1
    assert result.suppressed == []
    assert result.stale == []


def test_baselined_violation_is_suppressed_at_any_line():
    entry = BaselineEntry(
        rule="RPL008",
        path="src/repro/x.py",
        line_text="def f(x=[]):",
        reason="legacy signature kept for wire compat",
    )
    # Same fingerprint, different line number: still suppressed — the
    # fingerprint deliberately excludes line numbers so edits above the
    # exception don't invalidate it.
    result = apply_baseline([make_violation(line=99)], [entry])
    assert result.new == []
    assert len(result.suppressed) == 1
    assert result.stale == []


def test_fixed_violation_marks_entry_stale():
    entry = BaselineEntry(
        rule="RPL008",
        path="src/repro/x.py",
        line_text="def f(x=[]):",
        reason="was needed",
    )
    result = apply_baseline([], [entry])
    assert result.new == []
    assert result.stale == [entry]


def test_one_entry_suppresses_repeated_identical_lines():
    entry = BaselineEntry(
        rule="RPL008",
        path="src/repro/x.py",
        line_text="def f(x=[]):",
        reason="r",
    )
    result = apply_baseline(
        [make_violation(line=3), make_violation(line=30)], [entry]
    )
    assert result.new == []
    assert len(result.suppressed) == 2
    assert result.stale == []


def test_round_trip_and_reason_preservation(tmp_path):
    path = tmp_path / "baseline.jsonl"
    first = entries_from_violations([make_violation()])
    assert first[0].reason == PLACEHOLDER_REASON
    edited = [
        BaselineEntry(
            rule=e.rule,
            path=e.path,
            line_text=e.line_text,
            reason="deliberate: see DESIGN.md",
        )
        for e in first
    ]
    save_baseline(path, edited)
    loaded = load_baseline(path)
    assert loaded == sorted(
        edited, key=lambda e: (e.path, e.rule, e.line_text)
    )
    # Re-generating from the same violations keeps the human reason.
    regenerated = entries_from_violations([make_violation()], loaded)
    assert regenerated[0].reason == "deliberate: see DESIGN.md"


def test_load_tolerates_comments_and_torn_tail(tmp_path):
    path = tmp_path / "baseline.jsonl"
    good = json.dumps(
        {
            "rule": "RPL001",
            "path": "src/repro/y.py",
            "line_text": "import random",
            "reason": "r",
        }
    )
    path.write_text(f"# header comment\n{good}\n{{\"rule\": \"RPL0")
    loaded = load_baseline(path)
    assert [e.rule for e in loaded] == ["RPL001"]


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.jsonl") == []
