"""Tests for the crowd substrate: oracle, workers, aggregation, simulator."""

import numpy as np
import pytest

from repro.crowd import (
    AdversarialWorker,
    GroundTruth,
    NoisyWorker,
    PerfectWorker,
    SimulatedCrowd,
    majority_accuracy,
    majority_vote,
    weighted_vote,
)
from repro.distributions import Uniform
from repro.questions import Question


class TestGroundTruth:
    def test_ordering_is_descending(self):
        truth = GroundTruth([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(truth.ordering, [1, 2, 0])
        assert truth.rank_of(1) == 0
        assert truth.rank_of(0) == 2

    def test_ties_break_by_index(self):
        truth = GroundTruth([0.5, 0.5, 0.1])
        np.testing.assert_array_equal(truth.ordering, [0, 1, 2])

    def test_top_k(self):
        truth = GroundTruth([3.0, 1.0, 2.0, 4.0])
        np.testing.assert_array_equal(truth.top_k(2), [3, 0])

    def test_holds(self):
        truth = GroundTruth([0.9, 0.1])
        # Canonical claim is always "t_i ≺ t_j" with i < j.
        assert truth.holds(Question(0, 1)) is True
        assert truth.holds(Question(1, 0)) is True  # same canonical question
        assert not GroundTruth([0.1, 0.9]).holds(Question(0, 1))

    def test_sample_respects_supports(self):
        dists = [Uniform(0, 1), Uniform(5, 6)]
        truth = GroundTruth.sample(dists, rng=0)
        assert truth.scores[0] <= 1.0
        assert truth.scores[1] >= 5.0
        np.testing.assert_array_equal(truth.ordering, [1, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            GroundTruth([])


class TestWorkers:
    @pytest.fixture
    def truth(self):
        return GroundTruth([0.2, 0.8, 0.5])

    def test_perfect_worker(self, truth):
        worker = PerfectWorker()
        assert worker.accuracy == 1.0
        # truth: t1 (0.8) ranks above t0 (0.2) → claim "t0 ≺ t1" is False.
        assert worker.answer(Question(0, 1), truth) is False
        assert worker.answer(Question(1, 2), truth) is True
        assert worker.answered == 2

    def test_adversarial_worker(self, truth):
        worker = AdversarialWorker()
        assert worker.answer(Question(0, 1), truth) is True

    def test_noisy_worker_error_rate(self, truth):
        worker = NoisyWorker(0.8, rng=np.random.default_rng(0))
        question = Question(1, 2)  # claim true: t1 (0.8) above t2 (0.5)
        answers = [worker.answer(question, truth) for _ in range(4000)]
        correct_fraction = float(np.mean(answers))
        assert correct_fraction == pytest.approx(0.8, abs=0.02)

    def test_noisy_worker_validation(self):
        with pytest.raises(ValueError):
            NoisyWorker(1.3)

    def test_worker_names_unique(self):
        assert PerfectWorker().name != PerfectWorker().name


class TestAggregation:
    def test_majority_vote(self):
        verdict, support = majority_vote([True, True, False])
        assert verdict is True
        assert support == pytest.approx(2 / 3)

    def test_majority_tie_prefers_true(self):
        verdict, _ = majority_vote([True, False])
        assert verdict is True

    def test_majority_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_weighted_vote_trusts_better_worker(self):
        verdict, confidence = weighted_vote(
            [True, False, False], [0.95, 0.6, 0.6]
        )
        assert verdict is True  # the strong yes outweighs two weak nos
        assert 0.5 <= confidence <= 1.0

    def test_weighted_vote_validation(self):
        with pytest.raises(ValueError):
            weighted_vote([True], [0.9, 0.8])
        with pytest.raises(ValueError):
            weighted_vote([], [])

    def test_majority_accuracy_boost(self):
        single = majority_accuracy(0.8, 1)
        tripled = majority_accuracy(0.8, 3)
        assert single == pytest.approx(0.8)
        assert tripled > 0.88  # 0.8^3 + 3·0.8²·0.2 = 0.896

    def test_majority_accuracy_even_ties(self):
        # Two workers, tie broken uniformly: p² + p(1−p).
        assert majority_accuracy(0.8, 2) == pytest.approx(
            0.8**2 + 0.8 * 0.2
        )

    def test_majority_accuracy_validation(self):
        with pytest.raises(ValueError):
            majority_accuracy(0.8, 0)


class TestSimulatedCrowd:
    @pytest.fixture
    def truth(self):
        return GroundTruth([0.2, 0.8, 0.5, 0.9])

    def test_perfect_crowd_always_correct(self, truth):
        crowd = SimulatedCrowd(truth, worker_accuracy=1.0)
        for question in [Question(0, 1), Question(2, 3), Question(1, 3)]:
            answer = crowd.ask(question)
            assert answer.holds == truth.holds(question)
            assert answer.accuracy == 1.0

    def test_noisy_crowd_reports_effective_accuracy(self, truth):
        crowd = SimulatedCrowd(
            truth, worker_accuracy=0.8, replication=3, rng=0
        )
        assert crowd.effective_accuracy() == pytest.approx(
            majority_accuracy(0.8, 3)
        )
        answer = crowd.ask(Question(0, 1))
        assert answer.accuracy == pytest.approx(crowd.effective_accuracy())
        assert not crowd.is_reliable

    def test_assumed_accuracy_override(self, truth):
        crowd = SimulatedCrowd(
            truth, worker_accuracy=0.8, assumed_accuracy=0.95, rng=0
        )
        assert crowd.ask(Question(0, 1)).accuracy == 0.95

    def test_cost_accounting(self, truth):
        crowd = SimulatedCrowd(
            truth, worker_accuracy=0.9, replication=3,
            cost_per_assignment=0.10, rng=0,
        )
        crowd.ask_batch([Question(0, 1), Question(2, 3)])
        assert crowd.stats.questions_posted == 2
        assert crowd.stats.assignments == 6
        assert crowd.stats.total_cost == pytest.approx(0.60)
        crowd.stats.reset()
        assert crowd.stats.questions_posted == 0

    def test_validation(self, truth):
        with pytest.raises(ValueError):
            SimulatedCrowd(truth, worker_accuracy=1.2)
        with pytest.raises(ValueError):
            SimulatedCrowd(truth, replication=0)
