"""Tests for replicated-answer aggregation (majority and Bayesian)."""

import pytest

from repro.crowd.aggregation import (
    majority_accuracy,
    majority_vote,
    weighted_vote,
)


class TestMajorityVote:
    def test_clear_majority(self):
        verdict, support = majority_vote([True, True, False])
        assert verdict is True
        assert support == pytest.approx(2 / 3)

    def test_negative_majority(self):
        verdict, support = majority_vote([False, False, False, True])
        assert verdict is False
        assert support == pytest.approx(3 / 4)

    def test_tie_breaks_toward_true(self):
        verdict, support = majority_vote([True, False])
        assert verdict is True
        assert support == pytest.approx(0.5)

    def test_unanimous_support_is_total(self):
        assert majority_vote([True] * 5) == (True, 1.0)

    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])


class TestWeightedVote:
    def test_single_vote_returns_its_accuracy(self):
        verdict, confidence = weighted_vote([True], [0.8])
        assert verdict is True
        assert confidence == pytest.approx(0.8)

    def test_one_strong_worker_beats_two_weak(self):
        verdict, confidence = weighted_vote(
            [True, False, False], [0.99, 0.6, 0.6]
        )
        assert verdict is True
        assert confidence > 0.5

    def test_symmetric_flip(self):
        """Negating every vote negates the verdict, same confidence."""
        votes = [True, True, False]
        accuracies = [0.9, 0.7, 0.8]
        verdict, confidence = weighted_vote(votes, accuracies)
        flipped, flipped_confidence = weighted_vote(
            [not v for v in votes], accuracies
        )
        assert flipped is (not verdict)
        assert flipped_confidence == pytest.approx(confidence)

    def test_coin_flip_workers_carry_no_signal(self):
        verdict, confidence = weighted_vote([True, False], [0.5, 0.5])
        assert confidence == pytest.approx(0.5)
        assert verdict is True  # zero log-odds resolves toward True

    def test_agreement_raises_confidence_above_any_single_worker(self):
        _, single = weighted_vote([True], [0.8])
        _, pair = weighted_vote([True, True], [0.8, 0.8])
        assert pair > single

    def test_perfect_accuracy_is_clamped_not_fatal(self):
        verdict, confidence = weighted_vote([True], [1.0])
        assert verdict is True
        assert confidence > 0.999

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_vote([True, False], [0.8])

    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            weighted_vote([], [])

    def test_accuracy_validated(self):
        with pytest.raises(ValueError):
            weighted_vote([True], [1.5])


class TestMajorityAccuracy:
    def test_single_worker_is_identity(self):
        assert majority_accuracy(0.8, 1) == pytest.approx(0.8)

    def test_three_way_closed_form(self):
        p = 0.8
        expected = p**3 + 3 * p**2 * (1 - p)
        assert majority_accuracy(p, 3) == pytest.approx(expected)

    def test_even_replication_tie_break_keeps_pair_at_worker_level(self):
        """With 2 workers, the split vote is a coin flip, so the pair is
        exactly as reliable as one worker: p^2 + 0.5 * 2p(1-p) = p."""
        for p in (0.6, 0.75, 0.9):
            assert majority_accuracy(p, 2) == pytest.approx(p)

    def test_replication_helps_above_half(self):
        assert majority_accuracy(0.7, 5) > majority_accuracy(0.7, 3) > 0.7

    def test_replication_hurts_below_half(self):
        assert majority_accuracy(0.4, 3) < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_accuracy(0.8, 0)
        with pytest.raises(ValueError):
            majority_accuracy(1.2, 3)


class TestConsistency:
    def test_equal_accuracies_agree_with_majority(self):
        """Uniform-accuracy Bayesian fusion reduces to majority vote."""
        for votes in ([True, True, False], [False, False, True], [True]):
            majority_verdict, _ = majority_vote(votes)
            weighted_verdict, _ = weighted_vote(votes, [0.8] * len(votes))
            assert weighted_verdict is majority_verdict
