"""Tests for EM worker-accuracy estimation."""

import numpy as np
import pytest

from repro.crowd import GroundTruth
from repro.crowd.estimation import (
    LabeledVote,
    estimate_worker_accuracies,
    simulate_vote_log,
)
from repro.questions import Question


@pytest.fixture
def truth():
    rng = np.random.default_rng(0)
    return GroundTruth(rng.random(16))


@pytest.fixture
def questions():
    return [Question(i, j) for i in range(16) for j in range(i + 1, 16)]


class TestEstimation:
    def test_recovers_heterogeneous_accuracies(self, truth, questions):
        """120 questions identify each worker's band (±0.15 — the
        statistical limit at this sample size, not an algorithm slack)."""
        rng = np.random.default_rng(1)
        true_accuracies = {"good": 0.95, "mid": 0.8, "bad": 0.6}
        votes = simulate_vote_log(truth, questions, true_accuracies, rng)
        result = estimate_worker_accuracies(votes)
        for worker, accuracy in true_accuracies.items():
            assert result.accuracies[worker] == pytest.approx(
                accuracy, abs=0.15
            )
        # The weak worker is always separated from the strong ones.
        assert result.accuracies["bad"] < result.accuracies["good"]
        assert result.accuracies["bad"] < result.accuracies["mid"]

    def test_consensus_tracks_majority_quality(self, truth, questions):
        rng = np.random.default_rng(2)
        votes = simulate_vote_log(
            truth, questions, {"a": 0.75, "b": 0.75, "c": 0.75}, rng
        )
        result = estimate_worker_accuracies(votes)
        consensus = result.consensus()
        correct = sum(
            1 for q, verdict in consensus.items() if verdict == truth.holds(q)
        )
        consensus_accuracy = correct / len(consensus)
        assert consensus_accuracy >= 0.75  # no worse than one worker

    def test_ordering_of_workers_is_right(self, truth, questions):
        """A large (0.9 vs 0.55) gap is identified on every seed."""
        for seed in range(3):
            rng = np.random.default_rng(seed + 3)
            votes = simulate_vote_log(
                truth,
                questions,
                {"strong": 0.9, "weak": 0.55, "anchor": 0.75},
                rng,
            )
            result = estimate_worker_accuracies(votes)
            assert (
                result.accuracies["strong"] > result.accuracies["weak"]
            )

    def test_converges(self, truth, questions):
        rng = np.random.default_rng(4)
        votes = simulate_vote_log(truth, questions, {"a": 0.9, "b": 0.8}, rng)
        result = estimate_worker_accuracies(votes)
        assert result.converged
        assert result.iterations <= 100

    def test_posterior_probabilities_in_range(self, truth, questions):
        rng = np.random.default_rng(5)
        votes = simulate_vote_log(truth, questions[:20], {"a": 0.85}, rng)
        result = estimate_worker_accuracies(votes)
        for p in result.posteriors.values():
            assert 0.0 <= p <= 1.0

    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            estimate_worker_accuracies([])

    def test_single_vote_respects_prior(self):
        votes = [LabeledVote(Question(0, 1), "solo", True)]
        result = estimate_worker_accuracies(votes, prior_accuracy=0.7)
        # One vote cannot move far from the prior.
        assert result.accuracies["solo"] == pytest.approx(0.7, abs=0.15)

    def test_prior_validation(self):
        votes = [LabeledVote(Question(0, 1), "w", True)]
        with pytest.raises(ValueError):
            estimate_worker_accuracies(votes, prior_accuracy=1.5)

    def test_simulate_vote_log_shape(self, truth):
        rng = np.random.default_rng(6)
        questions = [Question(0, 1), Question(1, 2)]
        votes = simulate_vote_log(truth, questions, {"a": 1.0, "b": 1.0}, rng)
        assert len(votes) == 4
        for vote in votes:
            assert vote.holds == truth.holds(vote.question)

    def test_hitting_the_iteration_cap_reports_non_convergence(
        self, truth, questions
    ):
        rng = np.random.default_rng(7)
        votes = simulate_vote_log(
            truth, questions, {"a": 0.9, "b": 0.7, "c": 0.55}, rng
        )
        result = estimate_worker_accuracies(
            votes, max_iterations=1, tolerance=1e-12
        )
        assert not result.converged
        assert result.iterations == 1

    def test_adversarial_worker_lands_below_half(self, truth, questions):
        """Three honest workers expose an always-wrong one: its posterior
        agreement rate drops below 0.5 despite the 0.7 prior."""
        rng = np.random.default_rng(8)
        votes = simulate_vote_log(
            truth,
            questions,
            {"a": 0.9, "b": 0.9, "c": 0.9},
            rng,
        )
        votes += [
            LabeledVote(q, "liar", not truth.holds(q)) for q in questions
        ]
        result = estimate_worker_accuracies(votes)
        assert result.accuracies["liar"] < 0.5
        assert all(
            result.accuracies[w] > 0.8 for w in ("a", "b", "c")
        )

    def test_accuracies_stay_in_unit_interval(self, truth, questions):
        rng = np.random.default_rng(9)
        votes = simulate_vote_log(
            truth, questions, {"a": 1.0, "b": 0.5}, rng
        )
        result = estimate_worker_accuracies(votes)
        for accuracy in result.accuracies.values():
            assert 0.0 <= accuracy <= 1.0

    def test_simulated_accuracy_validated(self, truth):
        rng = np.random.default_rng(10)
        with pytest.raises(ValueError):
            simulate_vote_log(truth, [Question(0, 1)], {"a": 1.5}, rng)
