"""Setup shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package required
by PEP-517 editable builds (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
