"""Quickstart: crowd-powered top-K over uncertain scores in ~40 lines.

Builds a small table of tuples with uncertain (interval) scores, inspects
the space of possible top-5 orderings, then spends a budget of 10 crowd
questions with the paper's ``T1-on`` algorithm to converge toward the real
ordering.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GroundTruth,
    SimulatedCrowd,
    UncertaintyReductionSession,
    Uniform,
)
from repro.api import POLICIES

rng = np.random.default_rng(42)

# 1. Twelve tuples whose scores are only known up to an interval.
scores = [Uniform(center, center + 0.30) for center in rng.random(12)]

# 2. One realization of the world: what the crowd actually observes.
truth = GroundTruth.sample(scores, rng)
print(f"real top-5 ordering: {[int(t) for t in truth.top_k(5)]}")

# 3. A perfectly reliable simulated crowd answering pairwise comparisons.
crowd = SimulatedCrowd(truth, worker_accuracy=1.0, rng=rng)

# 4. Run the T1-on selection policy with a budget of 10 questions.
session = UncertaintyReductionSession(
    scores, k=5, crowd=crowd, rng=rng, track_trajectory=True
)
result = session.run(POLICIES.create("T1-on"), budget=10)

print(f"\norderings before:   {result.orderings_initial}")
print(f"orderings after:    {result.orderings_final}")
print(f"uncertainty U_H:    {result.initial_uncertainty:.3f} -> "
      f"{result.final_uncertainty:.3f}")
print(f"distance D(w_r, T): {result.initial_distance:.4f} -> "
      f"{result.distance_to_truth:.4f}")
print(f"questions asked:    {result.questions_asked} "
      f"(early stop below the budget of 10 is possible)")

print("\nquestions and answers:")
for answer in result.answers:
    print(f"  {answer}")

best = [int(t) for t in result.final_space.most_probable_ordering()]
print(f"\nmost probable top-5 now: {best}")
print(f"distance after each answer: "
      f"{[round(d, 4) for d in result.trajectory]}")
