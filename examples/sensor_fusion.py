"""Sensor fusion: which sensors report the highest temperatures?

The paper's introduction motivates uncertain top-K with "the noise inherent
in sensors".  Here 15 sensors each took a handful of noisy readings, so the
per-sensor temperature is a posterior Gaussian.  A technician (the "crowd")
can physically check two sensors side by side — an expensive operation we
budget carefully, and whose verdicts are themselves only 90 % reliable.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import GroundTruth, SimulatedCrowd, crowdsourced_topk, topk
from repro.api import POLICIES
from repro.db import AttributeScore
from repro.workloads import sensor_network

rng = np.random.default_rng(7)

table = sensor_network(
    n_sensors=15, readings_per_sensor=4, noise_sigma=0.9, rng=rng
)
scoring = AttributeScore("temperature")

# --- Phase 1: the uncertain query answer, before any human involvement.
answer = topk(table, k=5, scoring=scoring)
print(answer.describe())
print()

# --- Phase 2: ground truth = the sensors' actual temperatures.
true_scores = [row.attributes["true_temperature"] for row in table]
truth = GroundTruth(true_scores)
print("actually hottest:", [table[i].key for i in truth.top_k(5)])

# --- Phase 3: spend 12 technician checks (90 % reliable) with T1-on.
crowd = SimulatedCrowd(truth, worker_accuracy=0.9, rng=rng)
result = crowdsourced_topk(
    table,
    k=5,
    budget=12,
    policy=POLICIES.create("T1-on"),
    crowd=crowd,
    scoring=scoring,
    rng=rng,
)

print(f"\nafter {result.questions_asked} checks "
      f"(cost ${result.crowd_cost:.2f}):")
print(f"  orderings: {result.orderings_initial} -> {result.orderings_final}")
print(f"  distance to real ranking: {result.initial_distance:.4f} -> "
      f"{result.distance_to_truth:.4f}")
best = result.final_space.most_probable_ordering()
print("  most probable hottest-5:", [table[int(i)].key for i in best])
