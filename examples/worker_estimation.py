"""Worker-accuracy estimation: closing the loop the paper leaves open.

The paper's noisy-crowd machinery (§III-C) assumes the worker accuracy is
*known*.  On a real marketplace it is not — but it can be estimated from
redundant answers with EM (Dawid & Skene, 1979).  This example:

1. collects a redundant vote log from three workers of unknown quality;
2. estimates each worker's accuracy (no ground truth used!);
3. runs uncertainty reduction with the *estimated* reliability feeding the
   Bayesian TPO updates, and compares against a naive run that assumes
   everyone is 90 % accurate.

Run:  python examples/worker_estimation.py
"""

import numpy as np

from repro.api import POLICIES

from repro import (
    GroundTruth,
    SimulatedCrowd,
    UncertaintyReductionSession,
    Uniform,
)
from repro.crowd.estimation import estimate_worker_accuracies, simulate_vote_log
from repro.questions import Question

rng = np.random.default_rng(77)

# A dozen tuples with overlapping score intervals.
scores = [Uniform(c, c + 0.35) for c in rng.random(12)]
truth = GroundTruth.sample(scores, rng)

# --- Phase 1: a calibration batch. Workers of hidden quality each answer
# all pairwise comparisons over a small calibration subset of tuples.
hidden_quality = {"ada": 0.95, "bob": 0.8, "eve": 0.55}
calibration = [Question(i, j) for i in range(8) for j in range(i + 1, 8)]
votes = simulate_vote_log(truth, calibration, hidden_quality, rng)
estimate = estimate_worker_accuracies(votes)

print("hidden worker quality :", hidden_quality)
print("estimated from votes  :",
      {w: round(a, 3) for w, a in estimate.accuracies.items()})
print(f"(EM took {estimate.iterations} iterations, "
      f"converged={estimate.converged})\n")

# --- Phase 2: production queries use the best worker with the ESTIMATED
# reliability driving the Bayesian updates.
best_worker = max(estimate.accuracies, key=estimate.accuracies.get)
estimated_accuracy = estimate.accuracies[best_worker]
print(f"hiring {best_worker!r} "
      f"(estimated accuracy {estimated_accuracy:.3f}, "
      f"true {hidden_quality[best_worker]})\n")

for label, assumed in [
    ("estimated reliability", estimated_accuracy),
    ("blind 0.90 assumption", 0.90),
]:
    crowd = SimulatedCrowd(
        truth,
        worker_accuracy=hidden_quality[best_worker],
        assumed_accuracy=assumed,
        rng=np.random.default_rng(5),
    )
    session = UncertaintyReductionSession(
        scores, k=5, crowd=crowd, rng=np.random.default_rng(6)
    )
    result = session.run(POLICIES.create("T1-on"), budget=12)
    print(f"{label:>22s}: D = {result.initial_distance:.4f} -> "
          f"{result.distance_to_truth:.4f}  "
          f"(U {result.initial_uncertainty:.2f} -> "
          f"{result.final_uncertainty:.2f})")
