"""Restaurant ranking: multi-attribute scoring + offline crowd batches.

A dining guide ranks restaurants by ``0.7·quality − 0.02·price −
0.1·distance``: quality is an uncertain interval mined from reviews, price
and distance are certain.  The editorial team publishes ONE batch of
comparison tasks to a crowdsourcing market (the paper's offline setting) —
we use ``C-off`` to pick the batch, then show the CSV round-trip of the
uncertain table.

Run:  python examples/restaurant_ranking.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GroundTruth, SimulatedCrowd, crowdsourced_topk, topk
from repro.api import POLICIES
from repro.db import LinearScore, read_table, write_table
from repro.workloads import restaurant_guide

rng = np.random.default_rng(5)

table = restaurant_guide(n_restaurants=14, rng=rng)
scoring = LinearScore(
    {"quality": 0.7, "price": -0.02, "distance_km": -0.1}, rng=rng
)

answer = topk(table, k=4, scoring=scoring)
print(answer.describe())

# Ground truth: a concrete world drawn from the same uncertainty model.
distributions = table.score_distributions(scoring=scoring)
truth = GroundTruth.sample(distributions, rng)
print("\ntrue best-4:", [table[i].key for i in truth.top_k(4)])

# One offline batch of 10 tasks chosen by C-off, answered by one reliable
# worker per task (the market aggregates assignments for us).
crowd = SimulatedCrowd(truth, worker_accuracy=1.0, rng=rng)
result = crowdsourced_topk(
    table,
    k=4,
    budget=10,
    policy=POLICIES.create("C-off"),
    crowd=crowd,
    scoring=scoring,
    rng=rng,
)
print(f"\nbatch of {result.questions_asked} tasks: "
      f"{result.orderings_initial} -> {result.orderings_final} orderings, "
      f"D = {result.initial_distance:.4f} -> {result.distance_to_truth:.4f}")
best = result.final_space.most_probable_ordering()
print("published ranking:", [table[int(i)].key for i in best])

# CSV round-trip of the uncertain relation.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "restaurants.csv"
    write_table(table, path, ["quality", "price", "distance_km"])
    loaded = read_table(path)
    print(f"\nCSV round-trip: {len(loaded)} rows; "
          f"first row quality support = "
          f"{loaded[0].attribute_distribution('quality').support}")
