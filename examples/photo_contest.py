"""Photo contest: picking the top-3 photos from sparse, noisy user votes.

"The imprecision of human contributions" is the paper's second motivating
data source.  Each photo has only a few 1–5 star votes, so its quality is a
histogram distribution and the top-3 is ambiguous.  We compare all the
paper's fast selection policies on the *same* contest and the same crowd
noise, reproducing the Figure-1(a) story on a single realistic instance.

Run:  python examples/photo_contest.py
"""

import numpy as np

from repro import GroundTruth, SimulatedCrowd, UncertaintyReductionSession
from repro.api import POLICIES
from repro.db import AttributeScore
from repro.workloads import photo_contest

rng = np.random.default_rng(2016)

table = photo_contest(n_photos=12, votes_per_photo=6, rng=rng)
scores = table.score_distributions(scoring=AttributeScore("rating"))
truth = GroundTruth([row.attributes["true_quality"] for row in table])
print("true podium:", [table[i].key for i in truth.top_k(3)])
print()

BUDGET = 8
print(f"{'policy':>8s}  {'asked':>5s}  {'orderings':>18s}  {'distance':>18s}  {'cpu':>7s}")
for name in ["T1-on", "TB-off", "C-off", "incr", "naive", "random"]:
    crowd = SimulatedCrowd(
        truth, worker_accuracy=0.85, replication=3,
        rng=np.random.default_rng(99),
    )
    session = UncertaintyReductionSession(
        scores, k=3, crowd=crowd, rng=np.random.default_rng(1)
    )
    kwargs = {"round_size": 4} if name == "incr" else {}
    result = session.run(POLICIES.create(name, **kwargs), BUDGET)
    orderings = f"{result.orderings_initial} -> {result.orderings_final}"
    distance = f"{result.initial_distance:.4f} -> {result.distance_to_truth:.4f}"
    if result.policy == "incr":
        orderings = f"(lazy) -> {result.orderings_final}"
        distance = f"(lazy) -> {result.distance_to_truth:.4f}"
    print(
        f"{name:>8s}  {result.questions_asked:>5d}  {orderings:>18s}  "
        f"{distance:>18s}  {result.cpu_seconds:>6.3f}s"
    )

print("\n(3 workers vote on every question; their majority is ~94% reliable)")
